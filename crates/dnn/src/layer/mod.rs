//! Layer implementations with real forward and backward passes.
//!
//! Every layer is stateless: parameters and activations live outside
//! (owned by [`Model`](crate::Model) executions), so the same layer
//! object can describe replicas on many simulated GPUs.
//!
//! Omissions relative to the original papers, none of which change the
//! computation/communication profile this study measures: dropout and
//! local response normalisation are identity at profiling granularity
//! and are not modelled; auxiliary classifier heads of GoogLeNet /
//! Inception-v3 are excluded (as is common in framework re-implementations).

mod activation;
mod conv;
mod dense;
mod merge;
mod norm;
mod pool;

pub use activation::Relu;
pub use conv::Conv2d;
pub use dense::Dense;
pub use merge::{Add, Concat};
pub use norm::BatchNorm2d;
pub use pool::{AvgPool2d, MaxPool2d};

use std::fmt;

use crate::tensor::{Shape, Tensor};

/// Gradients produced by a layer's backward pass.
#[derive(Debug, Clone)]
pub struct Backward {
    /// Gradient with respect to each input, in input order.
    pub grad_inputs: Vec<Tensor>,
    /// Gradient with respect to each parameter, in parameter order.
    pub grad_params: Vec<Tensor>,
}

/// A differentiable network layer.
///
/// The contract mirrors cuDNN's stateless descriptor style: `forward`
/// and `backward` receive everything they need and return fresh
/// tensors. `backward` receives the forward inputs, the parameters, the
/// forward output, and the gradient flowing back from downstream.
///
/// `Send + Sync` are supertraits so a [`crate::Model`] can be shared
/// across the threads of a parallel experiment grid (layers are
/// stateless descriptors, so any implementation is naturally both).
pub trait Layer: fmt::Debug + Send + Sync {
    /// Short kind tag used in kernel labels: `"conv"`, `"fc"`, ...
    fn kind(&self) -> &'static str;

    /// Output shape given the input shapes.
    ///
    /// # Panics
    ///
    /// Implementations panic on arity or shape mismatches; shape
    /// inference runs at model build time so misconfigurations fail
    /// before any simulation starts.
    fn output_shape(&self, inputs: &[Shape]) -> Shape;

    /// Shapes of the layer's learnable parameters (empty by default).
    fn param_shapes(&self) -> Vec<Shape> {
        Vec::new()
    }

    /// Computes the layer output.
    fn forward(&self, inputs: &[&Tensor], params: &[&Tensor]) -> Tensor;

    /// Computes input and parameter gradients.
    fn backward(
        &self,
        inputs: &[&Tensor],
        params: &[&Tensor],
        output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward;

    /// Forward-pass FLOPs (multiply-accumulate counted as 2).
    fn forward_flops(&self, inputs: &[Shape]) -> u64;

    /// Backward-pass FLOPs; defaults to the standard 2x-forward
    /// estimate (data gradient + weight gradient each cost roughly one
    /// forward).
    fn backward_flops(&self, inputs: &[Shape]) -> u64 {
        2 * self.forward_flops(inputs)
    }

    /// Whether the layer's kernels run on tensor cores (matrix-multiply
    /// shaped work: convolutions and fully-connected layers).
    fn uses_tensor_cores(&self) -> bool {
        false
    }

    /// Number of learnable scalars.
    fn param_count(&self) -> u64 {
        self.param_shapes().iter().map(|s| s.numel() as u64).sum()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::*;

    /// Verifies `layer`'s analytic gradients against central finite
    /// differences on the given inputs/params, using the scalar loss
    /// `sum(output * seed)` for a fixed pseudo-random seed tensor.
    pub fn check(layer: &dyn Layer, inputs: &[Tensor], params: &[Tensor], tol: f32) {
        let input_refs: Vec<&Tensor> = inputs.iter().collect();
        let param_refs: Vec<&Tensor> = params.iter().collect();
        let output = layer.forward(&input_refs, &param_refs);

        // Loss = sum(output * seed); dL/doutput = seed.
        let mut seed = Tensor::zeros(output.shape().clone());
        for (i, v) in seed.data_mut().iter_mut().enumerate() {
            *v = ((i * 2654435761) % 17) as f32 / 17.0 - 0.5;
        }
        let loss = |out: &Tensor| -> f64 {
            out.data()
                .iter()
                .zip(seed.data())
                .map(|(&o, &s)| o as f64 * s as f64)
                .sum()
        };

        let bwd = layer.backward(&input_refs, &param_refs, &output, &seed);
        assert_eq!(bwd.grad_inputs.len(), inputs.len());
        assert_eq!(bwd.grad_params.len(), params.len());

        let eps = 1e-2f32;
        let check_slot = |analytic: &Tensor, which: Slot| {
            for idx in 0..analytic.numel() {
                let mut inputs_p = inputs.to_vec();
                let mut params_p = params.to_vec();
                let mut inputs_m = inputs.to_vec();
                let mut params_m = params.to_vec();
                match which {
                    Slot::Input(s) => {
                        inputs_p[s][idx] += eps;
                        inputs_m[s][idx] -= eps;
                    }
                    Slot::Param(s) => {
                        params_p[s][idx] += eps;
                        params_m[s][idx] -= eps;
                    }
                }
                let out_p = layer.forward(
                    &inputs_p.iter().collect::<Vec<_>>(),
                    &params_p.iter().collect::<Vec<_>>(),
                );
                let out_m = layer.forward(
                    &inputs_m.iter().collect::<Vec<_>>(),
                    &params_m.iter().collect::<Vec<_>>(),
                );
                let numeric = ((loss(&out_p) - loss(&out_m)) / (2.0 * eps as f64)) as f32;
                let got = analytic[idx];
                let scale = numeric.abs().max(got.abs()).max(1.0);
                assert!(
                    (numeric - got).abs() / scale < tol,
                    "{} gradient mismatch at {idx}: numeric {numeric}, analytic {got}",
                    layer.kind(),
                );
            }
        };

        #[derive(Clone, Copy)]
        enum Slot {
            Input(usize),
            Param(usize),
        }

        for (s, g) in bwd.grad_inputs.iter().enumerate() {
            check_slot(g, Slot::Input(s));
        }
        for (s, g) in bwd.grad_params.iter().enumerate() {
            check_slot(g, Slot::Param(s));
        }
    }

    /// A small deterministic pseudo-random tensor for test fixtures.
    pub fn fixture(shape: Shape, salt: u64) -> Tensor {
        let mut t = Tensor::zeros(shape);
        for (i, v) in t.data_mut().iter_mut().enumerate() {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(salt);
            *v = ((x >> 33) % 1000) as f32 / 500.0 - 1.0;
        }
        t
    }
}
