//! 2-D convolution.

use crate::layer::{Backward, Layer};
use crate::tensor::{Shape, Tensor};

/// A 2-D convolution with (possibly rectangular) kernels, stride and
/// zero padding — the workhorse layer of all five paper workloads.
/// Rectangular kernels serve Inception-v3's factorised 1x7/7x1
/// convolutions.
///
/// Parameters: weight `[out_ch, in_ch, kh, kw]` and bias `[out_ch]`.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Conv2d, Layer, Shape};
///
/// let conv = Conv2d::new(3, 8, 3, 1, 1); // 3->8 channels, 3x3, same-pad
/// let out = conv.output_shape(&[Shape::new([4, 3, 32, 32])]);
/// assert_eq!(out.dims(), &[4, 8, 32, 32]);
/// assert_eq!(conv.param_count(), 8 * 3 * 3 * 3 + 8);
///
/// let fact = Conv2d::rect(8, 8, (1, 7), (1, 1), (0, 3)); // 1x7 factorised
/// let out = fact.output_shape(&[Shape::new([1, 8, 17, 17])]);
/// assert_eq!(out.dims(), &[1, 8, 17, 17]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    ph: usize,
    pw: usize,
}

impl Conv2d {
    /// Creates a square-kernel convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_ch`, `out_ch`, `kernel`, `stride` is zero.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Conv2d::rect(
            in_ch,
            out_ch,
            (kernel, kernel),
            (stride, stride),
            (pad, pad),
        )
    }

    /// Creates a rectangular-kernel convolution with per-axis
    /// `(height, width)` kernel, stride and padding.
    ///
    /// # Panics
    ///
    /// Panics on zero channels, kernel extents, or strides.
    pub fn rect(
        in_ch: usize,
        out_ch: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        pad: (usize, usize),
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0);
        assert!(kernel.0 > 0 && kernel.1 > 0 && stride.0 > 0 && stride.1 > 0);
        Conv2d {
            in_ch,
            out_ch,
            kh: kernel.0,
            kw: kernel.1,
            sh: stride.0,
            sw: stride.1,
            ph: pad.0,
            pw: pad.1,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.ph)
            .checked_sub(self.kh)
            .map(|v| v / self.sh + 1);
        let ow = (w + 2 * self.pw)
            .checked_sub(self.kw)
            .map(|v| v / self.sw + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
            _ => panic!(
                "conv kernel {}x{} (pad {},{}) larger than input {h}x{w}",
                self.kh, self.kw, self.ph, self.pw
            ),
        }
    }
}

impl Conv2d {
    /// Direct-loop reference implementation.
    fn forward_naive(&self, inputs: &[&Tensor], params: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        let (weight, bias) = (params[0], params[1]);
        let out_shape = self.output_shape(&[x.shape().clone()]);
        let (n, oc, oh, ow) = (
            out_shape.dim(0),
            out_shape.dim(1),
            out_shape.dim(2),
            out_shape.dim(3),
        );
        let (ic, ih, iw) = (x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
        let mut out = Tensor::zeros(out_shape);
        for b in 0..n {
            for o in 0..oc {
                let bval = bias[o];
                for y in 0..oh {
                    for xo in 0..ow {
                        let mut acc = bval;
                        let hy = y * self.sh;
                        let wx = xo * self.sw;
                        for c in 0..ic {
                            for ky in 0..self.kh {
                                let sy = hy + ky;
                                if sy < self.ph || sy - self.ph >= ih {
                                    continue;
                                }
                                for kx in 0..self.kw {
                                    let sx = wx + kx;
                                    if sx < self.pw || sx - self.pw >= iw {
                                        continue;
                                    }
                                    acc += x.at4(b, c, sy - self.ph, sx - self.pw)
                                        * weight.at4(o, c, ky, kx);
                                }
                            }
                        }
                        *out.at4_mut(b, o, y, xo) = acc;
                    }
                }
            }
        }
        out
    }

    /// im2col + GEMM implementation: unrolls each input window into a
    /// `[ic*kh*kw, oh*ow]` matrix and multiplies by the `[oc, ic*kh*kw]`
    /// weight matrix — the same lowering cuDNN's GEMM algorithms use.
    fn forward_im2col(&self, inputs: &[&Tensor], params: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        let (weight, bias) = (params[0], params[1]);
        let out_shape = self.output_shape(&[x.shape().clone()]);
        let (n, oc, oh, ow) = (
            out_shape.dim(0),
            out_shape.dim(1),
            out_shape.dim(2),
            out_shape.dim(3),
        );
        let (ic, ih, iw) = (x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
        let k = ic * self.kh * self.kw;
        let cols = oh * ow;
        let wmat = Tensor::from_vec(Shape::new([oc, k]), weight.data().to_vec());
        let mut out = Tensor::zeros(out_shape);
        let mut col = Tensor::zeros(Shape::new([k, cols]));
        for b in 0..n {
            // im2col for this sample.
            for c in 0..ic {
                for ky in 0..self.kh {
                    for kx in 0..self.kw {
                        let row = (c * self.kh + ky) * self.kw + kx;
                        for y in 0..oh {
                            let sy = y * self.sh + ky;
                            let in_row_ok = sy >= self.ph && sy - self.ph < ih;
                            for xo in 0..ow {
                                let sx = xo * self.sw + kx;
                                let v = if in_row_ok && sx >= self.pw && sx - self.pw < iw {
                                    x.at4(b, c, sy - self.ph, sx - self.pw)
                                } else {
                                    0.0
                                };
                                *col.at2_mut(row, y * ow + xo) = v;
                            }
                        }
                    }
                }
            }
            let prod = wmat.matmul(&col); // [oc, cols]
            for o in 0..oc {
                let bval = bias[o];
                for p in 0..cols {
                    *out.at4_mut(b, o, p / ow, p % ow) = prod.at2(o, p) + bval;
                }
            }
        }
        out
    }

    /// im2col-based backward: dW via GEMM of grad-rows against the
    /// column matrix, dX via col2im of weight^T x grad.
    fn backward_im2col(
        &self,
        inputs: &[&Tensor],
        params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let x = inputs[0];
        let weight = params[0];
        let (n, oc, oh, ow) = (
            grad_output.shape().dim(0),
            grad_output.shape().dim(1),
            grad_output.shape().dim(2),
            grad_output.shape().dim(3),
        );
        let (ic, ih, iw) = (x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
        let k = ic * self.kh * self.kw;
        let cols = oh * ow;
        // weight as [oc, k] and its transpose [k, oc].
        let mut wt = Tensor::zeros(Shape::new([k, oc]));
        for o in 0..oc {
            for r in 0..k {
                *wt.at2_mut(r, o) = weight.data()[o * k + r];
            }
        }
        let mut gx = Tensor::zeros(x.shape().clone());
        let mut gw_flat = Tensor::zeros(Shape::new([oc, k]));
        let mut gb = Tensor::zeros(Shape::new([oc]));
        let mut col = Tensor::zeros(Shape::new([k, cols]));
        for b in 0..n {
            // Rebuild the column matrix for this sample (as in forward).
            for c in 0..ic {
                for ky in 0..self.kh {
                    for kx in 0..self.kw {
                        let row = (c * self.kh + ky) * self.kw + kx;
                        for y in 0..oh {
                            let sy = y * self.sh + ky;
                            let in_row_ok = sy >= self.ph && sy - self.ph < ih;
                            for xo in 0..ow {
                                let sx = xo * self.sw + kx;
                                let v = if in_row_ok && sx >= self.pw && sx - self.pw < iw {
                                    x.at4(b, c, sy - self.ph, sx - self.pw)
                                } else {
                                    0.0
                                };
                                *col.at2_mut(row, y * ow + xo) = v;
                            }
                        }
                    }
                }
            }
            // grad_output for this sample as [oc, cols].
            let go = Tensor::from_vec(
                Shape::new([oc, cols]),
                grad_output.data()[b * oc * cols..(b + 1) * oc * cols].to_vec(),
            );
            // dW += go x col^T : compute via go[oc,cols] * colT[cols,k].
            let mut col_t = Tensor::zeros(Shape::new([cols, k]));
            for r in 0..k {
                for c2 in 0..cols {
                    *col_t.at2_mut(c2, r) = col.at2(r, c2);
                }
            }
            gw_flat.add_assign(&go.matmul(&col_t));
            // db += row sums of go.
            for o in 0..oc {
                for p in 0..cols {
                    gb[o] += go.at2(o, p);
                }
            }
            // dX via col2im of wt[k,oc] x go[oc,cols] = dcol[k,cols].
            let dcol = wt.matmul(&go);
            for c in 0..ic {
                for ky in 0..self.kh {
                    for kx in 0..self.kw {
                        let row = (c * self.kh + ky) * self.kw + kx;
                        for y in 0..oh {
                            let sy = y * self.sh + ky;
                            if sy < self.ph || sy - self.ph >= ih {
                                continue;
                            }
                            for xo in 0..ow {
                                let sx = xo * self.sw + kx;
                                if sx < self.pw || sx - self.pw >= iw {
                                    continue;
                                }
                                *gx.at4_mut(b, c, sy - self.ph, sx - self.pw) +=
                                    dcol.at2(row, y * ow + xo);
                            }
                        }
                    }
                }
            }
        }
        let gw = gw_flat.reshape(weight.shape().clone());
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![gw, gb],
        }
    }

    fn backward_naive(
        &self,
        inputs: &[&Tensor],
        params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let x = inputs[0];
        let weight = params[0];
        let (n, oc, oh, ow) = (
            grad_output.shape().dim(0),
            grad_output.shape().dim(1),
            grad_output.shape().dim(2),
            grad_output.shape().dim(3),
        );
        let (ic, ih, iw) = (x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
        let mut gx = Tensor::zeros(x.shape().clone());
        let mut gw = Tensor::zeros(weight.shape().clone());
        let mut gb = Tensor::zeros(Shape::new([oc]));
        for b in 0..n {
            for o in 0..oc {
                for y in 0..oh {
                    for xo in 0..ow {
                        let g = grad_output.at4(b, o, y, xo);
                        if g == 0.0 {
                            continue;
                        }
                        gb[o] += g;
                        let hy = y * self.sh;
                        let wx = xo * self.sw;
                        for c in 0..ic {
                            for ky in 0..self.kh {
                                let sy = hy + ky;
                                if sy < self.ph || sy - self.ph >= ih {
                                    continue;
                                }
                                for kx in 0..self.kw {
                                    let sx = wx + kx;
                                    if sx < self.pw || sx - self.pw >= iw {
                                        continue;
                                    }
                                    let xv = x.at4(b, c, sy - self.ph, sx - self.pw);
                                    *gw.at4_mut(o, c, ky, kx) += g * xv;
                                    *gx.at4_mut(b, c, sy - self.ph, sx - self.pw) +=
                                        g * weight.at4(o, c, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![gw, gb],
        }
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> &'static str {
        "conv"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert_eq!(inputs.len(), 1, "conv takes one input");
        let s = &inputs[0];
        assert_eq!(s.rank(), 4, "conv input must be NCHW");
        assert_eq!(s.dim(1), self.in_ch, "conv channel mismatch");
        let (oh, ow) = self.out_hw(s.dim(2), s.dim(3));
        Shape::new([s.dim(0), self.out_ch, oh, ow])
    }

    fn param_shapes(&self) -> Vec<Shape> {
        vec![
            Shape::new([self.out_ch, self.in_ch, self.kh, self.kw]),
            Shape::new([self.out_ch]),
        ]
    }

    fn forward(&self, inputs: &[&Tensor], params: &[&Tensor]) -> Tensor {
        // Dispatch like cuDNN: small problems run the direct loops,
        // large ones lower to an im2col GEMM (identical results; the
        // equivalence is property-tested below).
        let x = inputs[0];
        let out_shape = self.output_shape(&[x.shape().clone()]);
        let work = out_shape.numel() * self.in_ch * self.kh * self.kw;
        if work > 200_000 {
            self.forward_im2col(inputs, params)
        } else {
            self.forward_naive(inputs, params)
        }
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        params: &[&Tensor],
        output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let work = grad_output.numel() * self.in_ch * self.kh * self.kw;
        if work > 200_000 {
            self.backward_im2col(inputs, params, output, grad_output)
        } else {
            self.backward_naive(inputs, params, output, grad_output)
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        let out = self.output_shape(inputs);
        // 2 FLOPs (mul + add) per MAC.
        2 * out.numel() as u64 * (self.in_ch * self.kh * self.kw) as u64
    }

    fn uses_tensor_cores(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    #[test]
    fn output_shape_with_stride_and_pad() {
        let conv = Conv2d::new(3, 16, 5, 2, 2);
        let out = conv.output_shape(&[Shape::new([1, 3, 32, 32])]);
        assert_eq!(out.dims(), &[1, 16, 16, 16]);
    }

    #[test]
    fn rect_kernel_shapes() {
        let c17 = Conv2d::rect(4, 6, (1, 7), (1, 1), (0, 3));
        let out = c17.output_shape(&[Shape::new([2, 4, 17, 17])]);
        assert_eq!(out.dims(), &[2, 6, 17, 17]);
        let c71 = Conv2d::rect(4, 6, (7, 1), (1, 1), (3, 0));
        let out = c71.output_shape(&[Shape::new([2, 4, 17, 17])]);
        assert_eq!(out.dims(), &[2, 6, 17, 17]);
        assert_eq!(c17.param_count(), 6 * 4 * 7 + 6);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let conv = Conv2d::new(3, 16, 3, 1, 0);
        let _ = conv.output_shape(&[Shape::new([1, 4, 8, 8])]);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_kernel_panics() {
        let conv = Conv2d::new(1, 1, 9, 1, 0);
        let _ = conv.output_shape(&[Shape::new([1, 1, 4, 4])]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv with weight 1, bias 0 is the identity on one channel.
        let conv = Conv2d::new(1, 1, 1, 1, 0);
        let x = gradcheck::fixture(Shape::new([2, 1, 3, 3]), 1);
        let w = Tensor::full(Shape::new([1, 1, 1, 1]), 1.0);
        let b = Tensor::zeros(Shape::new([1]));
        let y = conv.forward(&[&x], &[&w, &b]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // Input 1x1x3x3 = [1..9], kernel of ones, no pad: single output
        // = sum(1..=9) = 45, plus bias 0.5.
        let conv = Conv2d::new(1, 1, 3, 1, 0);
        let x = Tensor::from_vec(
            Shape::new([1, 1, 3, 3]),
            (1..=9).map(|v| v as f32).collect(),
        );
        let w = Tensor::full(Shape::new([1, 1, 3, 3]), 1.0);
        let b = Tensor::full(Shape::new([1]), 0.5);
        let y = conv.forward(&[&x], &[&w, &b]);
        assert_eq!(y.data(), &[45.5]);
    }

    #[test]
    fn padding_zero_extends() {
        // Same-pad 3x3 ones-kernel on a single-pixel image: the padded
        // neighbourhood contributes zeros.
        let conv = Conv2d::new(1, 1, 3, 1, 1);
        let x = Tensor::from_vec(Shape::new([1, 1, 1, 1]), vec![2.0]);
        let w = Tensor::full(Shape::new([1, 1, 3, 3]), 1.0);
        let b = Tensor::zeros(Shape::new([1]));
        let y = conv.forward(&[&x], &[&w, &b]);
        assert_eq!(y.data(), &[2.0]);
    }

    #[test]
    fn asymmetric_conv_slides_along_one_axis() {
        // 1x3 ones-kernel over a 1x1x1x3 row [1,2,3], pad (0,1):
        // outputs are the windowed sums [3, 6, 5].
        let conv = Conv2d::rect(1, 1, (1, 3), (1, 1), (0, 1));
        let x = Tensor::from_vec(Shape::new([1, 1, 1, 3]), vec![1.0, 2.0, 3.0]);
        let w = Tensor::full(Shape::new([1, 1, 1, 3]), 1.0);
        let b = Tensor::zeros(Shape::new([1]));
        let y = conv.forward(&[&x], &[&w, &b]);
        assert_eq!(y.data(), &[3.0, 6.0, 5.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let conv = Conv2d::new(2, 3, 3, 2, 1);
        let x = gradcheck::fixture(Shape::new([2, 2, 5, 5]), 11);
        let w = gradcheck::fixture(Shape::new([3, 2, 3, 3]), 22);
        let b = gradcheck::fixture(Shape::new([3]), 33);
        gradcheck::check(&conv, &[x], &[w, b], 2e-2);
    }

    #[test]
    fn rect_gradients_match_finite_differences() {
        let conv = Conv2d::rect(1, 2, (1, 3), (1, 2), (0, 1));
        let x = gradcheck::fixture(Shape::new([1, 1, 3, 6]), 44);
        let w = gradcheck::fixture(Shape::new([2, 1, 1, 3]), 55);
        let b = gradcheck::fixture(Shape::new([2]), 66);
        gradcheck::check(&conv, &[x], &[w, b], 2e-2);
    }

    #[test]
    fn backward_im2col_matches_naive() {
        let conv = Conv2d::new(3, 4, 3, 2, 1);
        let x = gradcheck::fixture(Shape::new([2, 3, 7, 7]), 301);
        let w = gradcheck::fixture(Shape::new([4, 3, 3, 3]), 302);
        let b = gradcheck::fixture(Shape::new([4]), 303);
        let y = conv.forward_naive(&[&x], &[&w, &b]);
        let g = gradcheck::fixture(y.shape().clone(), 304);
        let naive = conv.backward_naive(&[&x], &[&w, &b], &y, &g);
        let fast = conv.backward_im2col(&[&x], &[&w, &b], &y, &g);
        for (a, c) in naive.grad_inputs[0]
            .data()
            .iter()
            .zip(fast.grad_inputs[0].data())
        {
            assert!((a - c).abs() < 1e-3, "dX: {a} vs {c}");
        }
        for (slot, (na, fa)) in naive.grad_params.iter().zip(&fast.grad_params).enumerate() {
            for (a, c) in na.data().iter().zip(fa.data()) {
                assert!((a - c).abs() < 1e-3, "dP[{slot}]: {a} vs {c}");
            }
        }
    }

    #[test]
    fn backward_im2col_matches_naive_rect() {
        let conv = Conv2d::rect(2, 3, (1, 7), (1, 1), (0, 3));
        let x = gradcheck::fixture(Shape::new([1, 2, 5, 9]), 401);
        let w = gradcheck::fixture(Shape::new([3, 2, 1, 7]), 402);
        let b = gradcheck::fixture(Shape::new([3]), 403);
        let y = conv.forward_naive(&[&x], &[&w, &b]);
        let g = gradcheck::fixture(y.shape().clone(), 404);
        let naive = conv.backward_naive(&[&x], &[&w, &b], &y, &g);
        let fast = conv.backward_im2col(&[&x], &[&w, &b], &y, &g);
        for (a, c) in naive.grad_inputs[0]
            .data()
            .iter()
            .zip(fast.grad_inputs[0].data())
        {
            assert!((a - c).abs() < 1e-3, "dX: {a} vs {c}");
        }
    }

    #[test]
    fn im2col_matches_naive_on_fixed_case() {
        let conv = Conv2d::new(3, 5, 3, 2, 1);
        let x = gradcheck::fixture(Shape::new([2, 3, 9, 9]), 101);
        let w = gradcheck::fixture(Shape::new([5, 3, 3, 3]), 102);
        let b = gradcheck::fixture(Shape::new([5]), 103);
        let naive = conv.forward_naive(&[&x], &[&w, &b]);
        let fast = conv.forward_im2col(&[&x], &[&w, &b]);
        assert_eq!(naive.shape(), fast.shape());
        for (a, c) in naive.data().iter().zip(fast.data()) {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn im2col_matches_naive_for_rect_kernels() {
        let conv = Conv2d::rect(2, 3, (1, 5), (1, 2), (0, 2));
        let x = gradcheck::fixture(Shape::new([1, 2, 4, 11]), 201);
        let w = gradcheck::fixture(Shape::new([3, 2, 1, 5]), 202);
        let b = gradcheck::fixture(Shape::new([3]), 203);
        let naive = conv.forward_naive(&[&x], &[&w, &b]);
        let fast = conv.forward_im2col(&[&x], &[&w, &b]);
        for (a, c) in naive.data().iter().zip(fast.data()) {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn flops_formula() {
        let conv = Conv2d::new(3, 8, 3, 1, 1);
        let inputs = [Shape::new([4, 3, 32, 32])];
        // 2 * (4*8*32*32) * (3*3*3)
        assert_eq!(conv.forward_flops(&inputs), 2 * 4 * 8 * 32 * 32 * 27);
        assert_eq!(
            conv.backward_flops(&inputs),
            2 * conv.forward_flops(&inputs)
        );
        assert!(conv.uses_tensor_cores());
    }
}
