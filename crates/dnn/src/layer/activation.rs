//! Activation functions.

use crate::layer::{Backward, Layer};
use crate::tensor::{Shape, Tensor};

/// Rectified linear unit, `y = max(x, 0)` — the activation used by all
/// five paper workloads.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Layer, Relu, Shape, Tensor};
///
/// let relu = Relu;
/// let x = Tensor::from_vec(Shape::new([4]), vec![-1.0, 0.0, 2.0, -3.0]);
/// let y = relu.forward(&[&x], &[]);
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Layer for Relu {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert_eq!(inputs.len(), 1, "relu takes one input");
        inputs[0].clone()
    }

    fn forward(&self, inputs: &[&Tensor], _params: &[&Tensor]) -> Tensor {
        let mut out = inputs[0].clone();
        for v in out.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let mut gx = grad_output.clone();
        for (g, &x) in gx.data_mut().iter_mut().zip(inputs[0].data()) {
            if x <= 0.0 {
                *g = 0.0;
            }
        }
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        inputs[0].numel() as u64
    }

    fn backward_flops(&self, inputs: &[Shape]) -> u64 {
        inputs[0].numel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    #[test]
    fn clamps_negatives_only() {
        let x = Tensor::from_vec(Shape::new([3]), vec![-0.5, 0.5, 1.5]);
        let y = Relu.forward(&[&x], &[]);
        assert_eq!(y.data(), &[0.0, 0.5, 1.5]);
    }

    #[test]
    fn gradient_masks_negative_inputs() {
        let x = Tensor::from_vec(Shape::new([3]), vec![-1.0, 2.0, 3.0]);
        let y = Relu.forward(std::slice::from_ref(&&x), &[]);
        let g = Tensor::from_vec(Shape::new([3]), vec![5.0, 5.0, 5.0]);
        let bwd = Relu.backward(std::slice::from_ref(&&x), &[], &y, &g);
        assert_eq!(bwd.grad_inputs[0].data(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Fixture values keep away from the kink at exactly 0.
        let x = gradcheck::fixture(Shape::new([2, 3]), 42);
        gradcheck::check(&Relu, &[x], &[], 2e-2);
    }

    #[test]
    fn shape_preserved_and_paramless() {
        let s = Shape::new([2, 3, 4, 4]);
        assert_eq!(Relu.output_shape(std::slice::from_ref(&s)), s);
        assert_eq!(Relu.param_count(), 0);
        assert_eq!(Relu.forward_flops(std::slice::from_ref(&s)), 96);
        assert_eq!(Relu.backward_flops(&[s]), 96);
    }
}
