//! Multi-input merge layers: channel concatenation (inception modules)
//! and elementwise addition (residual blocks).

use crate::layer::{Backward, Layer};
use crate::tensor::{Shape, Tensor};

/// Channel-axis concatenation of NCHW tensors — the join at the end of
/// every GoogLeNet/Inception-v3 inception module.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Concat, Layer, Shape};
///
/// let cat = Concat;
/// let out = cat.output_shape(&[
///     Shape::new([2, 64, 28, 28]),
///     Shape::new([2, 128, 28, 28]),
///     Shape::new([2, 32, 28, 28]),
/// ]);
/// assert_eq!(out.dims(), &[2, 224, 28, 28]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Concat;

impl Layer for Concat {
    fn kind(&self) -> &'static str {
        "concat"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert!(!inputs.is_empty(), "concat needs at least one input");
        let first = &inputs[0];
        assert_eq!(first.rank(), 4, "concat input must be NCHW");
        let mut channels = 0;
        for s in inputs {
            assert_eq!(s.dim(0), first.dim(0), "concat batch mismatch");
            assert_eq!(s.dim(2), first.dim(2), "concat height mismatch");
            assert_eq!(s.dim(3), first.dim(3), "concat width mismatch");
            channels += s.dim(1);
        }
        Shape::new([first.dim(0), channels, first.dim(2), first.dim(3)])
    }

    fn forward(&self, inputs: &[&Tensor], _params: &[&Tensor]) -> Tensor {
        let shapes: Vec<Shape> = inputs.iter().map(|t| t.shape().clone()).collect();
        let out_shape = self.output_shape(&shapes);
        let (n, h, w) = (out_shape.dim(0), out_shape.dim(2), out_shape.dim(3));
        let mut out = Tensor::zeros(out_shape);
        for b in 0..n {
            let mut co = 0;
            for x in inputs {
                let ci = x.shape().dim(1);
                for c in 0..ci {
                    for y in 0..h {
                        for xo in 0..w {
                            *out.at4_mut(b, co + c, y, xo) = x.at4(b, c, y, xo);
                        }
                    }
                }
                co += ci;
            }
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let (n, h, w) = (
            grad_output.shape().dim(0),
            grad_output.shape().dim(2),
            grad_output.shape().dim(3),
        );
        let mut grads = Vec::with_capacity(inputs.len());
        let mut co = 0;
        for x in inputs {
            let ci = x.shape().dim(1);
            let mut g = Tensor::zeros(x.shape().clone());
            for b in 0..n {
                for c in 0..ci {
                    for y in 0..h {
                        for xo in 0..w {
                            *g.at4_mut(b, c, y, xo) = grad_output.at4(b, co + c, y, xo);
                        }
                    }
                }
            }
            grads.push(g);
            co += ci;
        }
        Backward {
            grad_inputs: grads,
            grad_params: vec![],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        // Pure data movement; count one op per copied element.
        inputs.iter().map(|s| s.numel() as u64).sum()
    }

    fn backward_flops(&self, inputs: &[Shape]) -> u64 {
        self.forward_flops(inputs)
    }
}

/// Elementwise addition of equal-shaped tensors — the shortcut join of
/// ResNet residual blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct Add;

impl Layer for Add {
    fn kind(&self) -> &'static str {
        "add"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert!(inputs.len() >= 2, "add needs at least two inputs");
        for s in &inputs[1..] {
            assert_eq!(*s, inputs[0], "add shape mismatch");
        }
        inputs[0].clone()
    }

    fn forward(&self, inputs: &[&Tensor], _params: &[&Tensor]) -> Tensor {
        let mut out = inputs[0].clone();
        for x in &inputs[1..] {
            out.add_assign(x);
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        Backward {
            grad_inputs: vec![grad_output.clone(); inputs.len()],
            grad_params: vec![],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        (inputs.len() as u64 - 1) * inputs[0].numel() as u64
    }

    fn backward_flops(&self, inputs: &[Shape]) -> u64 {
        inputs[0].numel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    #[test]
    fn concat_stacks_channels_in_order() {
        let a = Tensor::full(Shape::new([1, 1, 2, 2]), 1.0);
        let b = Tensor::full(Shape::new([1, 2, 2, 2]), 2.0);
        let y = Concat.forward(&[&a, &b], &[]);
        assert_eq!(y.shape().dims(), &[1, 3, 2, 2]);
        assert_eq!(y.at4(0, 0, 0, 0), 1.0);
        assert_eq!(y.at4(0, 1, 1, 1), 2.0);
        assert_eq!(y.at4(0, 2, 0, 1), 2.0);
    }

    #[test]
    fn concat_backward_splits_gradient() {
        let a = Tensor::zeros(Shape::new([1, 1, 1, 1]));
        let b = Tensor::zeros(Shape::new([1, 1, 1, 1]));
        let y = Concat.forward(&[&a, &b], &[]);
        let g = Tensor::from_vec(Shape::new([1, 2, 1, 1]), vec![3.0, 7.0]);
        let bwd = Concat.backward(&[&a, &b], &[], &y, &g);
        assert_eq!(bwd.grad_inputs[0].data(), &[3.0]);
        assert_eq!(bwd.grad_inputs[1].data(), &[7.0]);
    }

    #[test]
    #[should_panic(expected = "height mismatch")]
    fn concat_rejects_spatial_mismatch() {
        let _ = Concat.output_shape(&[Shape::new([1, 1, 2, 2]), Shape::new([1, 1, 3, 2])]);
    }

    #[test]
    fn add_sums_elementwise() {
        let a = Tensor::full(Shape::new([2, 2]), 1.5);
        let b = Tensor::full(Shape::new([2, 2]), 2.5);
        let y = Add.forward(&[&a, &b], &[]);
        assert_eq!(y.data(), &[4.0; 4]);
    }

    #[test]
    fn add_backward_fans_out() {
        let a = Tensor::zeros(Shape::new([2]));
        let b = Tensor::zeros(Shape::new([2]));
        let y = Add.forward(&[&a, &b], &[]);
        let g = Tensor::from_vec(Shape::new([2]), vec![1.0, 2.0]);
        let bwd = Add.backward(&[&a, &b], &[], &y, &g);
        assert_eq!(bwd.grad_inputs.len(), 2);
        assert_eq!(bwd.grad_inputs[0].data(), g.data());
        assert_eq!(bwd.grad_inputs[1].data(), g.data());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatch() {
        let _ = Add.output_shape(&[Shape::new([2, 2]), Shape::new([2, 3])]);
    }

    #[test]
    fn concat_gradcheck() {
        let a = gradcheck::fixture(Shape::new([1, 1, 2, 2]), 1);
        let b = gradcheck::fixture(Shape::new([1, 2, 2, 2]), 2);
        gradcheck::check(&Concat, &[a, b], &[], 2e-2);
    }

    #[test]
    fn add_gradcheck() {
        let a = gradcheck::fixture(Shape::new([1, 2, 2, 2]), 3);
        let b = gradcheck::fixture(Shape::new([1, 2, 2, 2]), 4);
        gradcheck::check(&Add, &[a, b], &[], 2e-2);
    }
}
