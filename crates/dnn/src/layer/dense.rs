//! Fully-connected (dense) layers.

use crate::layer::{Backward, Layer};
use crate::tensor::{Shape, Tensor};

/// A fully-connected layer `y = x W^T + b`, flattening any rank-4 NCHW
/// input to `[N, C*H*W]` first (as frameworks do before their
/// classifier heads).
///
/// Parameters: weight `[out_features, in_features]`, bias
/// `[out_features]`.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Dense, Layer, Shape};
///
/// let fc = Dense::new(256 * 6 * 6, 4096); // AlexNet's fc6
/// let out = fc.output_shape(&[Shape::new([32, 256, 6, 6])]);
/// assert_eq!(out.dims(), &[32, 4096]);
/// assert_eq!(fc.param_count(), 256 * 6 * 6 * 4096 + 4096);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        assert!(in_features > 0 && out_features > 0);
        Dense {
            in_features,
            out_features,
        }
    }

    fn check_features(&self, s: &Shape) -> usize {
        let features: usize = s.dims()[1..].iter().product();
        assert_eq!(
            features, self.in_features,
            "dense expected {} input features, got {features} from {s}",
            self.in_features
        );
        s.dim(0)
    }
}

impl Layer for Dense {
    fn kind(&self) -> &'static str {
        "fc"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert_eq!(inputs.len(), 1, "dense takes one input");
        let n = self.check_features(&inputs[0]);
        Shape::new([n, self.out_features])
    }

    fn param_shapes(&self) -> Vec<Shape> {
        vec![
            Shape::new([self.out_features, self.in_features]),
            Shape::new([self.out_features]),
        ]
    }

    fn forward(&self, inputs: &[&Tensor], params: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        let (weight, bias) = (params[0], params[1]);
        let n = self.check_features(x.shape());
        let mut out = Tensor::zeros(Shape::new([n, self.out_features]));
        let xd = x.data();
        for b in 0..n {
            let row = &xd[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let wrow = &weight.data()[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = bias[o];
                for (xv, wv) in row.iter().zip(wrow) {
                    acc += xv * wv;
                }
                *out.at2_mut(b, o) = acc;
            }
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let x = inputs[0];
        let weight = params[0];
        let n = self.check_features(x.shape());
        let mut gx = Tensor::zeros(x.shape().clone());
        let mut gw = Tensor::zeros(weight.shape().clone());
        let mut gb = Tensor::zeros(Shape::new([self.out_features]));
        for b in 0..n {
            let xrow = &x.data()[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let g = grad_output.at2(b, o);
                if g == 0.0 {
                    continue;
                }
                gb[o] += g;
                let wrow = &weight.data()[o * self.in_features..(o + 1) * self.in_features];
                let gwrow = &mut gw.data_mut()[o * self.in_features..(o + 1) * self.in_features];
                for i in 0..self.in_features {
                    gwrow[i] += g * xrow[i];
                }
                let gxrow = &mut gx.data_mut()[b * self.in_features..(b + 1) * self.in_features];
                for (gxv, wv) in gxrow.iter_mut().zip(wrow) {
                    *gxv += g * wv;
                }
            }
        }
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![gw, gb],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        let n = inputs[0].dim(0) as u64;
        2 * n * self.in_features as u64 * self.out_features as u64
    }

    fn uses_tensor_cores(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    #[test]
    fn known_projection() {
        let fc = Dense::new(3, 2);
        let x = Tensor::from_vec(Shape::new([1, 3]), vec![1.0, 2.0, 3.0]);
        let w = Tensor::from_vec(Shape::new([2, 3]), vec![1., 0., 0., 0., 1., 1.]);
        let b = Tensor::from_vec(Shape::new([2]), vec![10.0, 20.0]);
        let y = fc.forward(&[&x], &[&w, &b]);
        assert_eq!(y.data(), &[11.0, 25.0]);
    }

    #[test]
    fn rank4_input_is_flattened() {
        let fc = Dense::new(8, 4);
        let x = gradcheck::fixture(Shape::new([2, 2, 2, 2]), 3);
        let w = gradcheck::fixture(Shape::new([4, 8]), 4);
        let b = gradcheck::fixture(Shape::new([4]), 5);
        let y = fc.forward(&[&x], &[&w, &b]);
        assert_eq!(y.shape().dims(), &[2, 4]);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn feature_mismatch_panics() {
        let fc = Dense::new(10, 4);
        let _ = fc.output_shape(&[Shape::new([2, 3, 2, 2])]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let fc = Dense::new(6, 3);
        let x = gradcheck::fixture(Shape::new([2, 6]), 7);
        let w = gradcheck::fixture(Shape::new([3, 6]), 8);
        let b = gradcheck::fixture(Shape::new([3]), 9);
        gradcheck::check(&fc, &[x], &[w, b], 2e-2);
    }

    #[test]
    fn flops_formula() {
        let fc = Dense::new(100, 10);
        assert_eq!(fc.forward_flops(&[Shape::new([4, 100])]), 2 * 4 * 100 * 10);
        assert!(fc.uses_tensor_cores());
    }
}
