//! Lowering transfers onto the discrete-event engine's link resources.

use std::collections::BTreeMap;

use voltascope_sim::{ResourceId, TaskGraph, TaskId};
use voltascope_topo::{Device, LinkId, Topology};

/// Per-direction link resources for one simulated system.
///
/// Every physical link becomes two capacity-1 resources (one per
/// direction, since NVLink/PCIe bandwidths are full-duplex), so
/// concurrent transfers over the same link direction serialise while
/// opposite directions overlap — exactly the contention behaviour that
/// makes GPU0 the bottleneck of the P2P parameter-server schedule
/// (§V-A).
///
/// # Example
///
/// ```
/// use voltascope_comm::LinkNetwork;
/// use voltascope_sim::{Engine, TaskGraph};
/// use voltascope_topo::{dgx1_v100, Device};
///
/// let topo = dgx1_v100();
/// let mut graph = TaskGraph::new();
/// let net = LinkNetwork::register(&mut graph, &topo);
/// // Two transfers: GPU0->GPU1 (direct double NVLink) and GPU3->GPU4
/// // (no direct link: staged through a relay GPU).
/// let fast = net.transfer(&mut graph, &topo, Device::gpu(0), Device::gpu(1),
///                         50_000_000, &[], "wu.comm", "grad01");
/// let slow = net.transfer(&mut graph, &topo, Device::gpu(3), Device::gpu(4),
///                         50_000_000, &[], "wu.comm", "grad34");
/// let s = Engine::new().run(&graph).unwrap();
/// assert!(s.finish_time(slow) > s.finish_time(fast));
/// ```
#[derive(Debug, Clone)]
pub struct LinkNetwork {
    directed: BTreeMap<(LinkId, bool), ResourceId>,
}

impl LinkNetwork {
    /// Registers two directed resources per link of `topo` in `graph`.
    pub fn register(graph: &mut TaskGraph, topo: &Topology) -> Self {
        let mut directed = BTreeMap::new();
        for (i, link) in topo.links().iter().enumerate() {
            let id = LinkId::from_index(i);
            let fwd = graph.add_resource(format!("link.{}>{}", link.a, link.b), 1);
            let rev = graph.add_resource(format!("link.{}>{}", link.b, link.a), 1);
            directed.insert((id, true), fwd);
            directed.insert((id, false), rev);
        }
        LinkNetwork { directed }
    }

    /// The directed resource for crossing `link` from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link` or the link was
    /// not registered.
    pub fn direction(&self, topo: &Topology, link: LinkId, from: Device) -> ResourceId {
        let l = topo.link(link);
        let forward = if l.a == from {
            true
        } else if l.b == from {
            false
        } else {
            panic!("{from} is not an endpoint of {l}");
        };
        self.directed[&(link, forward)]
    }

    /// The directed resource of the widest direct link from `from` to
    /// `to`, if one exists (used by the ring collectives to occupy a
    /// link for a pipelined collective's full duration).
    pub fn direct_resource(&self, topo: &Topology, from: Device, to: Device) -> Option<ResourceId> {
        let (idx, _) = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.connects(from) && l.connects(to))
            .max_by(|(_, x), (_, y)| {
                x.bandwidth
                    .as_bytes_per_sec()
                    .partial_cmp(&y.bandwidth.as_bytes_per_sec())
                    .expect("finite bandwidth")
            })?;
        Some(self.direction(topo, LinkId::from_index(idx), from))
    }

    /// Emits the store-and-forward *occupancy* chain for a routed
    /// transfer: one task per hop of the hardware route, each on its
    /// per-direction link resource, lasting only that hop's
    /// serialisation (bandwidth) time. The ring collectives use this
    /// for host-bounced fallback hops, whose pipelined chunk-step
    /// latency is charged separately as a parallel delay — but whose
    /// bandwidth must still occupy every PCIe/QPI leg along the route,
    /// so concurrent fallback transfers over a shared leg contend
    /// instead of being priced as if the leg were dedicated.
    ///
    /// Returns the final hop's task.
    ///
    /// # Panics
    ///
    /// Panics if no route exists between `from` and `to`.
    #[allow(clippy::too_many_arguments)]
    pub fn occupy_route(
        &self,
        graph: &mut TaskGraph,
        topo: &Topology,
        from: Device,
        to: Device,
        bytes: u64,
        deps: &[TaskId],
        category: &str,
        label: &str,
    ) -> TaskId {
        let route = topo.route(from, to);
        let mut prev: Option<TaskId> = None;
        for (i, hop) in route.hops().iter().enumerate() {
            let resource = self.direction(topo, hop.link, hop.from);
            let mut builder = graph
                .task(format!("{label}.leg{i}"))
                .on(resource)
                .lasting(hop.bandwidth.transfer_time(bytes))
                .category(category);
            builder = match prev {
                Some(p) => builder.after(p),
                None => builder.after_all(deps.iter().copied()),
            };
            prev = Some(builder.build());
        }
        prev.expect("route has at least one hop")
    }

    /// Emits the task(s) for moving `bytes` from `from` to `to` and
    /// returns the completion task. Policy, mirroring MXNet on the
    /// DGX-1 (§V-A):
    ///
    /// 1. a direct link (NVLink or PCIe) is used as a single DMA;
    /// 2. GPU pairs without one use a *software multi-stage transfer*
    ///    through the best common NVLink neighbour (two chained DMAs);
    /// 3. otherwise the hardware route applies — DtoH then HtoD through
    ///    the CPUs over PCIe/QPI, store-and-forward per hop.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or no path exists.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &self,
        graph: &mut TaskGraph,
        topo: &Topology,
        from: Device,
        to: Device,
        bytes: u64,
        deps: &[TaskId],
        category: &str,
        label: &str,
    ) -> TaskId {
        self.transfer_with_policy(graph, topo, from, to, bytes, deps, category, label, true)
    }

    /// Like [`LinkNetwork::transfer`] but never using a software relay:
    /// non-adjacent GPU pairs take the hardware route (DtoH + HtoD over
    /// PCIe). MXNet's gradient *reduction* path behaves this way — the
    /// paper observes the multi-stage NVLink mitigation only for the
    /// updated-weight transfers (§V-A).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_hardware(
        &self,
        graph: &mut TaskGraph,
        topo: &Topology,
        from: Device,
        to: Device,
        bytes: u64,
        deps: &[TaskId],
        category: &str,
        label: &str,
    ) -> TaskId {
        self.transfer_with_policy(graph, topo, from, to, bytes, deps, category, label, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer_with_policy(
        &self,
        graph: &mut TaskGraph,
        topo: &Topology,
        from: Device,
        to: Device,
        bytes: u64,
        deps: &[TaskId],
        category: &str,
        label: &str,
        allow_relay: bool,
    ) -> TaskId {
        assert_ne!(from, to, "transfer to self");
        if let Some(task) = self.try_direct(graph, topo, from, to, bytes, deps, category, label) {
            return task;
        }
        if allow_relay && from.is_gpu() && to.is_gpu() {
            if let Some(&relay) = topo.relay_candidates(from, to).first() {
                let first = self
                    .try_direct(
                        graph,
                        topo,
                        from,
                        relay,
                        bytes,
                        deps,
                        category,
                        &format!("{label}.stage1"),
                    )
                    .expect("relay candidate must be directly linked");
                return self
                    .try_direct(
                        graph,
                        topo,
                        relay,
                        to,
                        bytes,
                        &[first],
                        category,
                        &format!("{label}.stage2"),
                    )
                    .expect("relay candidate must be directly linked");
            }
        }
        // Hardware route: store-and-forward per hop.
        let route = topo.route(from, to);
        let mut prev: Option<TaskId> = None;
        for (i, hop) in route.hops().iter().enumerate() {
            let resource = self.direction(topo, hop.link, hop.from);
            let duration = hop.latency + hop.bandwidth.transfer_time(bytes);
            let mut builder = graph
                .task(format!("{label}.hop{i}"))
                .on(resource)
                .lasting(duration)
                .category(category);
            builder = match prev {
                Some(p) => builder.after(p),
                None => builder.after_all(deps.iter().copied()),
            };
            prev = Some(builder.build());
        }
        prev.expect("route has at least one hop")
    }

    #[allow(clippy::too_many_arguments)]
    fn try_direct(
        &self,
        graph: &mut TaskGraph,
        topo: &Topology,
        from: Device,
        to: Device,
        bytes: u64,
        deps: &[TaskId],
        category: &str,
        label: &str,
    ) -> Option<TaskId> {
        let link = topo.direct_link(from, to)?;
        // Identify which registered link this is (the widest direct one).
        let (idx, _) = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.connects(from) && l.connects(to))
            .max_by(|(_, x), (_, y)| {
                x.bandwidth
                    .as_bytes_per_sec()
                    .partial_cmp(&y.bandwidth.as_bytes_per_sec())
                    .expect("finite bandwidth")
            })?;
        let resource = self.direction(topo, LinkId::from_index(idx), from);
        let duration = link.latency + link.bandwidth.transfer_time(bytes);
        Some(
            graph
                .task(label)
                .on(resource)
                .lasting(duration)
                .category(category)
                .after_all(deps.iter().copied())
                .build(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::Engine;
    use voltascope_topo::dgx1_v100;

    #[test]
    fn direct_transfer_uses_single_task() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let before = g.task_count();
        net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(1),
            1 << 20,
            &[],
            "c",
            "x",
        );
        assert_eq!(g.task_count() - before, 1);
    }

    #[test]
    fn relayed_transfer_uses_two_stages() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let before = g.task_count();
        // GPU0 -> GPU7: no direct link, but GPU1 neighbours both.
        net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(7),
            1 << 20,
            &[],
            "c",
            "x",
        );
        assert_eq!(g.task_count() - before, 2);
    }

    #[test]
    fn double_link_is_twice_as_fast() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let bytes = 100_000_000;
        let fast = net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(1),
            bytes,
            &[],
            "c",
            "a",
        );
        let slow = net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(3),
            bytes,
            &[],
            "c",
            "b",
        );
        let s = Engine::new().run(&g).unwrap();
        let tf = s.finish_time(fast).as_nanos() as f64;
        let ts = s.finish_time(slow).as_nanos() as f64;
        assert!((ts / tf - 2.0).abs() < 0.05, "ratio {}", ts / tf);
    }

    #[test]
    fn same_direction_transfers_serialise() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let bytes = 50_000_000; // 1 ms on the double link
        let a = net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(1),
            bytes,
            &[],
            "c",
            "a",
        );
        let b = net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(1),
            bytes,
            &[],
            "c",
            "b",
        );
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), s.finish_time(a));
    }

    #[test]
    fn opposite_directions_overlap() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let bytes = 50_000_000;
        let a = net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(1),
            bytes,
            &[],
            "c",
            "a",
        );
        let b = net.transfer(
            &mut g,
            &topo,
            Device::gpu(1),
            Device::gpu(0),
            bytes,
            &[],
            "c",
            "b",
        );
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(a), s.start_time(b));
    }

    #[test]
    fn cpu_to_gpu_training_data_goes_over_pcie() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let t = net.transfer(
            &mut g,
            &topo,
            Device::cpu(0),
            Device::gpu(2),
            12_000_000,
            &[],
            "h2d",
            "batch",
        );
        let s = Engine::new().run(&g).unwrap();
        // 12 MB at 12 GB/s = 1 ms (+5 us latency).
        assert_eq!(s.finish_time(t).as_micros(), 1005);
    }

    #[test]
    fn cross_socket_host_route_chains_hops() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        let before = g.task_count();
        // CPU0 -> GPU4 crosses QPI then PCIe.
        net.transfer(
            &mut g,
            &topo,
            Device::cpu(0),
            Device::gpu(4),
            1 << 20,
            &[],
            "h2d",
            "x",
        );
        assert_eq!(g.task_count() - before, 2);
    }

    #[test]
    #[should_panic(expected = "transfer to self")]
    fn self_transfer_panics() {
        let topo = dgx1_v100();
        let mut g = TaskGraph::new();
        let net = LinkNetwork::register(&mut g, &topo);
        net.transfer(
            &mut g,
            &topo,
            Device::gpu(0),
            Device::gpu(0),
            1,
            &[],
            "c",
            "x",
        );
    }
}
