//! # voltascope-comm — inter-GPU communication methods
//!
//! Implements the two communication schemes the paper compares for the
//! weight-update (WU) stage of data-parallel training (§II-C, §V-A):
//!
//! * **P2P direct transfer** — `cudaMemcpy`-style DMA copies between
//!   GPU memories, arranged by MXNet's parameter-server schedule: a
//!   [`ReductionTree`] funnels gradients to GPU0, the updated weights
//!   are broadcast back. Non-adjacent GPU pairs use either a software
//!   relay through a common NVLink neighbour (multi-stage transfer) or
//!   the slow DtoH + HtoD bounce through the CPUs.
//! * **NCCL-style collectives** — topology-aware [`Ring`] AllReduce and
//!   Broadcast with chunked pipelining, paying a fixed per-call kernel
//!   overhead (the "NCCL overhead" of Table II) but using every ring
//!   link concurrently. The [`protocol`] module models NCCL's LL /
//!   LL128 / Simple wire protocols, ring/tree algorithms, and channel
//!   counts; [`tuner`] picks the cheapest combination per message size
//!   the way NCCL's internal cost model does (overridable via
//!   `VOLTASCOPE_NCCL_PROTO`).
//!
//! Each collective exists at two levels:
//!
//! 1. A **semantic** level ([`semantic`]) operating on real `f32`
//!    buffers, so correctness (AllReduce really sums, Broadcast really
//!    replicates) is testable bit-for-bit.
//! 2. A **timing** level ([`LinkNetwork`], [`collective`]) that lowers
//!    transfers onto the discrete-event engine's link resources.
//!
//! # Example
//!
//! ```
//! use voltascope_comm::semantic;
//!
//! let mut bufs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
//! semantic::ring_all_reduce(&mut bufs);
//! assert_eq!(bufs, vec![vec![9.0, 12.0]; 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
mod network;
pub mod protocol;
mod ring;
pub mod semantic;
mod tree;
pub mod tuner;

pub use network::LinkNetwork;
pub use protocol::{
    Algorithm, BandwidthEfficiency, CommError, Protocol, Selection, TuningSpace, NCCL_PROTO_ENV,
};
pub use ring::Ring;
pub use tree::ReductionTree;

/// The two inter-GPU communication methods the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommMethod {
    /// CUDA peer-to-peer direct transfers with MXNet's parameter-server
    /// reduction/broadcast schedule.
    P2p,
    /// NCCL-style ring AllReduce + Broadcast collectives.
    Nccl,
}

impl CommMethod {
    /// Both methods, in the paper's presentation order.
    pub const ALL: [CommMethod; 2] = [CommMethod::P2p, CommMethod::Nccl];

    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            CommMethod::P2p => "P2P",
            CommMethod::Nccl => "NCCL",
        }
    }
}

impl std::fmt::Display for CommMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Compile-time guarantee for the parallel experiment grid: the
// communication cost models cross sweep worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CommMethod>();
    assert_send_sync::<collective::NcclCosts>();
    assert_send_sync::<Selection>();
    assert_send_sync::<TuningSpace>();
    assert_send_sync::<ReductionTree>();
    assert_send_sync::<Ring>();
};
