//! The NCCL tuning space: wire protocols, algorithms, and channels.
//!
//! Real NCCL does not run one fixed ring. Per collective call it picks
//! a *wire protocol* (LL / LL128 / Simple), an *algorithm* (ring or
//! tree), and a *channel count* (how many parallel instances share the
//! payload), using an internal cost model over message size and
//! topology — the space *Demystifying NCCL* (PAPERS.md,
//! arXiv:2507.04786) documents in depth. This module models that
//! space; [`crate::tuner`] performs the per-size selection.
//!
//! The paper's 2018 platform ran NCCL 2.0/2.1 — rings only, and the
//! fitted calibration constants of `voltascope-core` already subsume
//! whatever protocol mix that stack used. [`TuningSpace::paper`]
//! therefore pins {ring} x {Simple} x {1 channel}, reproducing the
//! calibrated graphs exactly, while [`TuningSpace::modern`] opens the
//! full NCCL-2.4-era space for the what-if sweeps and the
//! `VOLTASCOPE_NCCL_PROTO` override.

use std::fmt;

use voltascope_sim::SimSpan;

/// Environment variable that overrides the NCCL tuning space.
pub const NCCL_PROTO_ENV: &str = "VOLTASCOPE_NCCL_PROTO";

/// Typed errors of the communication cost models.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// A byte-volume computation exceeded `u64::MAX`.
    ArithmeticOverflow {
        /// Which computation overflowed (e.g. `"ring per-link bytes"`).
        context: &'static str,
        /// The payload size that triggered the overflow.
        bytes: u64,
    },
    /// A bandwidth efficiency outside `(0, 1]` (or non-finite).
    InvalidEfficiency {
        /// The rejected value.
        value: f64,
    },
    /// An unrecognised token in a tuning-space override string.
    UnknownTuningToken {
        /// The offending token.
        token: String,
    },
    /// A tuning-space override that filtered every candidate away.
    EmptyTuningSpace {
        /// The full override string.
        value: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::ArithmeticOverflow { context, bytes } => write!(
                f,
                "communication volume overflow computing {context} for a {bytes}-byte payload"
            ),
            CommError::InvalidEfficiency { value } => write!(
                f,
                "bandwidth efficiency must be a finite fraction in (0, 1], got {value}"
            ),
            CommError::UnknownTuningToken { token } => write!(
                f,
                "unknown {NCCL_PROTO_ENV} token {token:?} \
                 (expected auto, ll, ll128, simple, ring, tree, or chN)"
            ),
            CommError::EmptyTuningSpace { value } => write!(
                f,
                "{NCCL_PROTO_ENV}={value:?} leaves no (algorithm, protocol, channels) candidate"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Validated fraction of raw link bandwidth the pipeline sustains.
///
/// Stored in parts-per-million so the effective-bytes computation is
/// exact integer arithmetic (no `f64` round-trip — payloads above
/// 2^53 bytes used to lose low bits). Construction rejects values
/// outside `(0, 1]`, which deletes the `.max(0.01)` clamps that used
/// to silently rewrite nonsensical efficiencies at every use-site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BandwidthEfficiency {
    ppm: u32,
}

impl BandwidthEfficiency {
    /// Validates `value` as a sustained-bandwidth fraction.
    ///
    /// # Errors
    ///
    /// [`CommError::InvalidEfficiency`] unless `value` is finite and
    /// in `(0, 1]` (after rounding to the nearest part-per-million,
    /// the result must still be positive).
    pub fn new(value: f64) -> Result<Self, CommError> {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(CommError::InvalidEfficiency { value });
        }
        let ppm = (value * 1e6).round() as u32;
        if ppm == 0 || ppm > 1_000_000 {
            return Err(CommError::InvalidEfficiency { value });
        }
        Ok(BandwidthEfficiency { ppm })
    }

    /// The efficiency in parts-per-million (always in `1..=1_000_000`).
    pub fn ppm(self) -> u64 {
        u64::from(self.ppm)
    }

    /// The efficiency as a plain fraction.
    pub fn as_f64(self) -> f64 {
        f64::from(self.ppm) / 1e6
    }
}

impl Default for BandwidthEfficiency {
    /// The calibrated DGX-1V default: 85% sustained.
    fn default() -> Self {
        BandwidthEfficiency { ppm: 850_000 }
    }
}

impl fmt::Display for BandwidthEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", f64::from(self.ppm) / 1e4)
    }
}

/// NCCL wire protocols (*Demystifying NCCL* §protocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Low-latency: 8-byte lines carrying 4 bytes of data + a 4-byte
    /// flag, so the receiver spins on the flag instead of a memory
    /// fence. Half the wire is flags (50% efficiency) but per-step
    /// latency is minimal — wins small messages.
    Ll,
    /// LL128: 128-byte lines carrying 120 data bytes (93.75% wire
    /// efficiency), relying on the fabric's 128-byte atomic writes.
    /// Mid-range latency and near-full bandwidth.
    Ll128,
    /// Simple: bulk copies with memory-fence synchronisation. Full
    /// wire efficiency, highest per-step latency — wins large
    /// messages.
    Simple,
}

impl Protocol {
    /// All protocols, in NCCL's latency order (lowest first).
    pub const ALL: [Protocol; 3] = [Protocol::Ll, Protocol::Ll128, Protocol::Simple];

    /// Display name as NCCL spells it.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Ll => "LL",
            Protocol::Ll128 => "LL128",
            Protocol::Simple => "Simple",
        }
    }

    /// Wire efficiency as an exact rational `(data, wire)`: the
    /// protocol moves `wire/data x payload` bytes over the link.
    /// LL = 4 data per 8-byte line, LL128 = 120 per 128, Simple = 1/1.
    pub const fn wire_fraction(self) -> (u64, u64) {
        match self {
            Protocol::Ll => (1, 2),
            Protocol::Ll128 => (15, 16),
            Protocol::Simple => (1, 1),
        }
    }

    /// Per-chunk-step protocol cost, scaled from the calibrated Simple
    /// baseline: LL's flag-spin handshake avoids the fences that
    /// dominate Simple's step (1/4 of the cost here), LL128 sits in
    /// between (1/2).
    pub fn step_overhead(self, simple_baseline: SimSpan) -> SimSpan {
        match self {
            Protocol::Ll => simple_baseline / 4,
            Protocol::Ll128 => simple_baseline / 2,
            Protocol::Simple => simple_baseline,
        }
    }

    /// Chunk-step granularity in wire bytes: how much of a transfer
    /// one pipeline step moves before the slot is recycled. NCCL
    /// slices its per-channel buffer (4 MiB for Simple) into
    /// `NCCL_STEPS = 8` slots, so a Simple step carries 512 KiB;
    /// LL128's 120/128 line efficiency trims the data per slot, and
    /// LL's 8-byte flagged lines halve it again. The chunked emission
    /// ([`crate::collective::NcclCosts::chunking`]) occupies a link
    /// one step at a time at this granularity, which is what lets two
    /// collectives sharing the link interleave.
    pub const fn chunk_bytes(self) -> u64 {
        match self {
            Protocol::Ll => 256 << 10,
            Protocol::Ll128 => 480 << 10,
            Protocol::Simple => 512 << 10,
        }
    }

    /// Per-channel protocol processing throughput cap in bytes/sec, if
    /// any. LL and LL128 burn SM cycles packing lines and spinning on
    /// flags, so a single channel cannot saturate an NVLink lane —
    /// which is exactly why NCCL spreads them over more channels.
    /// Simple is DMA-bound and uncapped.
    pub fn channel_rate_cap(self) -> Option<f64> {
        match self {
            Protocol::Ll => Some(5.0e9),
            Protocol::Ll128 => Some(20.0e9),
            Protocol::Simple => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Collective algorithms the timing models implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// Chunked pipelined ring: bandwidth-optimal, `2(N-1)` latency
    /// steps.
    Ring,
    /// Binary reduce+broadcast tree (NCCL 2.4): `2 log2 N` latency
    /// steps, root links carry multiple children's payloads.
    Tree,
}

impl Algorithm {
    /// Both algorithms, rings first (the paper-era default).
    pub const ALL: [Algorithm; 2] = [Algorithm::Ring, Algorithm::Tree];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One point of the tuning space: what a collective call actually
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Selection {
    /// Ring or tree (broadcast is always ring-shaped; see
    /// [`crate::collective::broadcast`]).
    pub algorithm: Algorithm,
    /// Wire protocol.
    pub protocol: Protocol,
    /// Parallel channel instances sharing the payload (>= 1).
    pub channels: u32,
}

impl Selection {
    /// The paper-era fixed choice: single-channel Simple ring.
    pub const PAPER: Selection = Selection {
        algorithm: Algorithm::Ring,
        protocol: Protocol::Simple,
        channels: 1,
    };
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/c{}", self.algorithm, self.protocol, self.channels)
    }
}

/// The candidate set the auto-tuner searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningSpace {
    /// Candidate algorithms, in tie-break preference order.
    pub algorithms: Vec<Algorithm>,
    /// Candidate protocols, in tie-break preference order.
    pub protocols: Vec<Protocol>,
    /// Candidate channel counts, in tie-break preference order.
    pub channels: Vec<u32>,
}

impl TuningSpace {
    /// The space of the paper's NCCL 2.0/2.1 stack as calibrated:
    /// {ring} x {Simple} x {1}. A singleton, so the tuner returns it
    /// without simulating — the calibrated graphs are reproduced
    /// exactly.
    pub fn paper() -> Self {
        TuningSpace {
            algorithms: vec![Algorithm::Ring],
            protocols: vec![Protocol::Simple],
            channels: vec![1],
        }
    }

    /// The NCCL-2.4-era space: {ring, tree} x {LL, LL128, Simple} x
    /// {1, 2, 4} channels.
    pub fn modern() -> Self {
        TuningSpace {
            algorithms: Algorithm::ALL.to_vec(),
            protocols: Protocol::ALL.to_vec(),
            channels: vec![1, 2, 4],
        }
    }

    /// The default space after applying the `VOLTASCOPE_NCCL_PROTO`
    /// override from the environment.
    ///
    /// # Panics
    ///
    /// Panics (loudly, with the typed error) on an invalid override —
    /// a silently ignored pin would invalidate an experiment.
    pub fn from_env() -> Self {
        match std::env::var(NCCL_PROTO_ENV) {
            Err(_) => TuningSpace::paper(),
            Ok(value) => TuningSpace::parse_override(&value)
                .unwrap_or_else(|e| panic!("invalid {NCCL_PROTO_ENV}: {e}")),
        }
    }

    /// Parses a `VOLTASCOPE_NCCL_PROTO` override string.
    ///
    /// The override starts from [`TuningSpace::modern`] and narrows
    /// it: `ll`/`ll128`/`simple` keep only the named protocols (union
    /// if repeated), `ring`/`tree` only the named algorithms, `chN`
    /// pins the channel count to `N`, and `auto` keeps the full modern
    /// space. Tokens are comma-separated and case-insensitive:
    /// `"ll128,tree,ch2"` pins a 2-channel LL128 tree.
    ///
    /// # Errors
    ///
    /// [`CommError::UnknownTuningToken`] for an unrecognised token and
    /// [`CommError::EmptyTuningSpace`] if nothing survives (e.g.
    /// `"ch0"`).
    pub fn parse_override(value: &str) -> Result<Self, CommError> {
        let mut algorithms: Vec<Algorithm> = Vec::new();
        let mut protocols: Vec<Protocol> = Vec::new();
        let mut channels: Vec<u32> = Vec::new();
        for raw in value.split(',') {
            let token = raw.trim().to_ascii_lowercase();
            match token.as_str() {
                "" | "auto" => {}
                "ll" => protocols.push(Protocol::Ll),
                "ll128" => protocols.push(Protocol::Ll128),
                "simple" => protocols.push(Protocol::Simple),
                "ring" => algorithms.push(Algorithm::Ring),
                "tree" => algorithms.push(Algorithm::Tree),
                _ => match token.strip_prefix("ch").and_then(|n| n.parse::<u32>().ok()) {
                    Some(c) if c >= 1 => channels.push(c),
                    _ => {
                        return Err(CommError::UnknownTuningToken {
                            token: raw.trim().to_string(),
                        })
                    }
                },
            }
        }
        let modern = TuningSpace::modern();
        let space = TuningSpace {
            algorithms: if algorithms.is_empty() {
                modern.algorithms
            } else {
                algorithms
            },
            protocols: if protocols.is_empty() {
                modern.protocols
            } else {
                protocols
            },
            channels: if channels.is_empty() {
                modern.channels
            } else {
                channels
            },
        };
        if space.candidates().next().is_none() {
            return Err(CommError::EmptyTuningSpace {
                value: value.to_string(),
            });
        }
        Ok(space)
    }

    /// Every candidate selection, in canonical (tie-break) order:
    /// algorithm-major, then protocol, then channels. The tuner keeps
    /// the earliest candidate on cost ties, so this order is
    /// golden-relevant.
    pub fn candidates(&self) -> impl Iterator<Item = Selection> + '_ {
        self.algorithms.iter().flat_map(move |&algorithm| {
            self.protocols.iter().flat_map(move |&protocol| {
                self.channels
                    .iter()
                    .filter(|&&c| c >= 1)
                    .map(move |&channels| Selection {
                        algorithm,
                        protocol,
                        channels,
                    })
            })
        })
    }

    /// If the space holds exactly one candidate, that candidate.
    pub fn singleton(&self) -> Option<Selection> {
        let mut it = self.candidates();
        let first = it.next()?;
        if it.next().is_none() {
            Some(first)
        } else {
            None
        }
    }
}

impl Default for TuningSpace {
    /// [`TuningSpace::from_env`]: the paper space unless
    /// `VOLTASCOPE_NCCL_PROTO` overrides it.
    fn default() -> Self {
        TuningSpace::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_rejects_nonsense() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY, 1e-9] {
            assert!(
                BandwidthEfficiency::new(bad).is_err(),
                "accepted {bad}; the old code silently clamped it"
            );
        }
    }

    #[test]
    fn efficiency_accepts_and_round_trips_valid_fractions() {
        let eff = BandwidthEfficiency::new(0.85).unwrap();
        assert_eq!(eff.ppm(), 850_000);
        assert!((eff.as_f64() - 0.85).abs() < 1e-9);
        assert_eq!(BandwidthEfficiency::new(1.0).unwrap().ppm(), 1_000_000);
        assert_eq!(BandwidthEfficiency::default().ppm(), 850_000);
    }

    #[test]
    fn paper_space_is_the_calibrated_singleton() {
        assert_eq!(TuningSpace::paper().singleton(), Some(Selection::PAPER));
        assert_eq!(TuningSpace::modern().singleton(), None);
        assert_eq!(TuningSpace::modern().candidates().count(), 2 * 3 * 3);
    }

    #[test]
    fn override_pins_and_narrows() {
        let s = TuningSpace::parse_override("ll128").unwrap();
        assert_eq!(s.protocols, vec![Protocol::Ll128]);
        assert_eq!(s.algorithms, Algorithm::ALL.to_vec());
        let s = TuningSpace::parse_override("LL128,Tree,ch2").unwrap();
        assert_eq!(
            s.singleton(),
            Some(Selection {
                algorithm: Algorithm::Tree,
                protocol: Protocol::Ll128,
                channels: 2,
            })
        );
        assert_eq!(
            TuningSpace::parse_override("auto").unwrap(),
            TuningSpace::modern()
        );
        let s = TuningSpace::parse_override("ll,simple").unwrap();
        assert_eq!(s.protocols, vec![Protocol::Ll, Protocol::Simple]);
    }

    #[test]
    fn override_rejects_unknown_and_empty() {
        assert!(matches!(
            TuningSpace::parse_override("fast"),
            Err(CommError::UnknownTuningToken { .. })
        ));
        assert!(matches!(
            TuningSpace::parse_override("ch0"),
            Err(CommError::UnknownTuningToken { .. })
        ));
    }

    #[test]
    fn selection_displays_compactly() {
        assert_eq!(Selection::PAPER.to_string(), "ring/Simple/c1");
        let s = Selection {
            algorithm: Algorithm::Tree,
            protocol: Protocol::Ll128,
            channels: 4,
        };
        assert_eq!(s.to_string(), "tree/LL128/c4");
    }

    #[test]
    fn protocol_wire_fractions_match_the_wire_formats() {
        // LL: 4 data bytes per 8-byte line; LL128: 120 per 128.
        assert_eq!(Protocol::Ll.wire_fraction(), (1, 2));
        assert_eq!(Protocol::Ll128.wire_fraction(), (15, 16));
        assert_eq!(Protocol::Simple.wire_fraction(), (1, 1));
    }

    #[test]
    fn chunk_granularity_orders_with_line_efficiency() {
        // Simple moves a full 512 KiB buffer slot per step; the
        // flagged-line protocols carry less data per slot.
        assert_eq!(Protocol::Simple.chunk_bytes(), 512 << 10);
        assert!(Protocol::Ll128.chunk_bytes() < Protocol::Simple.chunk_bytes());
        assert!(Protocol::Ll.chunk_bytes() < Protocol::Ll128.chunk_bytes());
        for p in Protocol::ALL {
            assert!(p.chunk_bytes() > 0);
        }
    }
}
