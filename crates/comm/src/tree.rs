//! The parameter-server reduction/broadcast schedule used by MXNet's
//! P2P (`device` kvstore) mode.

/// A binary reduction tree over GPU ranks rooted at rank 0, matching
/// the schedule the paper describes in §II-B: "the gradients calculated
/// by GPU1 will be moved to GPU0 ... Simultaneously, GPU2 collects the
/// gradients from GPU3 ... Finally, GPU0 collects the averaged result
/// from GPU2."
///
/// # Example
///
/// ```
/// use voltascope_comm::ReductionTree;
///
/// let tree = ReductionTree::new(4);
/// assert_eq!(tree.reduce_steps(), vec![
///     vec![(1, 0), (3, 2)], // round 0: pairs reduce in parallel
///     vec![(2, 0)],         // round 1: half-roots reduce to GPU0
/// ]);
/// // Broadcast reverses the flow.
/// assert_eq!(tree.broadcast_steps(), vec![
///     vec![(0, 2)],
///     vec![(0, 1), (2, 3)],
/// ]);
/// ```
#[derive(Debug, Clone)]
pub struct ReductionTree {
    ranks: usize,
}

impl ReductionTree {
    /// Creates a tree over `ranks` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "tree needs at least one rank");
        ReductionTree { ranks }
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Reduction rounds: each round is a list of `(from, to)` transfers
    /// that may run concurrently; `to` accumulates `from`'s gradients.
    /// `ceil(log2(ranks))` rounds.
    pub fn reduce_steps(&self) -> Vec<Vec<(usize, usize)>> {
        let mut steps = Vec::new();
        let mut stride = 1;
        while stride < self.ranks {
            let mut round = Vec::new();
            let mut to = 0;
            while to + stride < self.ranks {
                round.push((to + stride, to));
                to += stride * 2;
            }
            steps.push(round);
            stride *= 2;
        }
        steps
    }

    /// Broadcast rounds (updated weights flowing back from rank 0):
    /// exactly the reduction rounds reversed with each edge flipped.
    pub fn broadcast_steps(&self) -> Vec<Vec<(usize, usize)>> {
        self.reduce_steps()
            .into_iter()
            .rev()
            .map(|round| round.into_iter().map(|(from, to)| (to, from)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_tree() {
        let t = ReductionTree::new(2);
        assert_eq!(t.reduce_steps(), vec![vec![(1, 0)]]);
        assert_eq!(t.broadcast_steps(), vec![vec![(0, 1)]]);
    }

    #[test]
    fn eight_rank_tree_has_three_rounds() {
        let t = ReductionTree::new(8);
        let steps = t.reduce_steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0], vec![(1, 0), (3, 2), (5, 4), (7, 6)]);
        assert_eq!(steps[1], vec![(2, 0), (6, 4)]);
        assert_eq!(steps[2], vec![(4, 0)]);
    }

    #[test]
    fn single_rank_tree_is_empty() {
        assert!(ReductionTree::new(1).reduce_steps().is_empty());
        assert!(ReductionTree::new(1).broadcast_steps().is_empty());
    }

    #[test]
    fn every_nonroot_rank_reduces_exactly_once() {
        for n in 2..=8 {
            let t = ReductionTree::new(n);
            let mut sent = vec![0u32; n];
            for round in t.reduce_steps() {
                for (from, to) in round {
                    assert!(from < n && to < n);
                    sent[from] += 1;
                    assert_ne!(from, to);
                }
            }
            assert_eq!(sent[0], 0, "root never sends");
            assert!(sent[1..].iter().all(|&c| c == 1), "n={n}: {sent:?}");
        }
    }

    #[test]
    fn broadcast_reaches_every_rank_once() {
        for n in 2..=8 {
            let t = ReductionTree::new(n);
            let mut received = vec![0u32; n];
            for round in t.broadcast_steps() {
                for (_, to) in round {
                    received[to] += 1;
                }
            }
            assert_eq!(received[0], 0);
            assert!(received[1..].iter().all(|&c| c == 1), "n={n}");
        }
    }

    #[test]
    fn odd_rank_counts_work() {
        let t = ReductionTree::new(5);
        let steps = t.reduce_steps();
        // 5 ranks: (1,0),(3,2) ; (2,0) ; (4,0)
        assert_eq!(steps[0], vec![(1, 0), (3, 2)]);
        assert_eq!(steps[1], vec![(2, 0)]);
        assert_eq!(steps[2], vec![(4, 0)]);
    }
}
