//! Timing models for NCCL-style collectives.
//!
//! NCCL's ring algorithms chunk the payload and pipeline it around the
//! ring, so every link carries `2(N-1)/N x bytes` for AllReduce and
//! `(N-1)/N x bytes` for Broadcast, all links active concurrently. The
//! price is a fixed per-call cost: MXNet launches `ReduceKernel` /
//! `BroadcastKernel` on every GPU for every bucket — present even on a
//! single GPU, which is exactly the "NCCL overhead" the paper isolates
//! in Table II (§V-B).

use std::collections::BTreeMap;

use voltascope_sim::{ResourceId, SimSpan, TaskGraph, TaskId};
use voltascope_topo::{Device, Topology};

use crate::network::LinkNetwork;
use crate::ring::Ring;

/// Fixed-cost parameters of the NCCL-style backend.
#[derive(Debug, Clone)]
pub struct NcclCosts {
    /// GPU time of the per-call `ReduceKernel`/`BroadcastKernel` on
    /// every rank, charged once per collective invocation (per
    /// gradient bucket). This is what fails to amortise on small
    /// networks (Table II).
    pub kernel_overhead: SimSpan,
    /// One-time per-epoch cost of communicator/kvstore setup on each
    /// GPU. Dominates LeNet's epoch at large batch sizes, which is why
    /// the paper sees NCCL overhead *grow* with batch size for small
    /// networks (§V-B).
    pub epoch_setup: SimSpan,
    /// Per-chunk-step protocol cost added to the link latency: flag
    /// checks and intermediate-buffer synchronisation of the ring
    /// pipeline. Dominates small-message collectives (LeNet's 5
    /// buckets), which is part of why P2P wins there (§V-A).
    pub step_overhead: SimSpan,
    /// Fraction of raw link bandwidth the ring pipeline sustains
    /// (NCCL-2.0-era bus-bandwidth measurements on DGX-1V land at
    /// 50-80% of the NVLink peak for medium message sizes).
    pub bandwidth_efficiency: f64,
    /// Host-side cost per GPU per iteration of assembling the grouped
    /// collective calls (the MXNet-NCCL kvstore path marshals every
    /// key into a group launch on its scheduling thread). A fixed
    /// per-iteration tax that a small workload like LeNet cannot
    /// amortise — the paper's "overhead associated with incorporating
    /// NCCL into MXNet" (§V-A).
    pub group_call_overhead: SimSpan,
}

impl Default for NcclCosts {
    fn default() -> Self {
        NcclCosts {
            kernel_overhead: SimSpan::from_micros(20),
            epoch_setup: SimSpan::from_millis(120),
            step_overhead: SimSpan::from_micros(4),
            bandwidth_efficiency: 0.85,
            group_call_overhead: SimSpan::from_micros(300),
        }
    }
}

/// The per-GPU completion tasks of a collective call.
pub type PerGpuDone = BTreeMap<Device, TaskId>;

/// Emits an NCCL-style ring AllReduce of `bytes` per rank.
///
/// `ready` maps each participating GPU to the task after which its
/// contribution (gradient bucket) is available; `compute` maps each
/// GPU to its compute-stream resource (the overhead kernels occupy
/// it). Returns each GPU's completion task.
///
/// # Panics
///
/// Panics if `ready`/`compute` do not cover the ring's devices.
#[allow(clippy::too_many_arguments)]
pub fn all_reduce(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    label: &str,
) -> PerGpuDone {
    ring_collective(
        graph,
        net,
        topo,
        ring,
        bytes,
        ready,
        compute,
        costs,
        label,
        "ReduceKernel",
        2,
    )
}

/// Emits an NCCL-style ring Broadcast of `bytes`.
///
/// Same contract as [`all_reduce`]; each link carries `(N-1)/N x
/// bytes`.
///
/// # Panics
///
/// Panics if `ready`/`compute` do not cover the ring's devices.
#[allow(clippy::too_many_arguments)]
pub fn broadcast(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    label: &str,
) -> PerGpuDone {
    ring_collective(
        graph,
        net,
        topo,
        ring,
        bytes,
        ready,
        compute,
        costs,
        label,
        "BroadcastKernel",
        1,
    )
}

#[allow(clippy::too_many_arguments)]
fn ring_collective(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    label: &str,
    kernel_name: &str,
    passes: u64,
) -> PerGpuDone {
    let n = ring.len() as u64;
    // Per-rank collective kernels: occupy the compute stream for the
    // fixed overhead plus their share of the data movement work.
    let mut kernels = Vec::new();
    for &gpu in ring.devices() {
        let dep = *ready
            .get(&gpu)
            .unwrap_or_else(|| panic!("no ready task for {gpu}"));
        let res = *compute
            .get(&gpu)
            .unwrap_or_else(|| panic!("no compute resource for {gpu}"));
        let k = graph
            .task(format!("{label}.{kernel_name}@{gpu}"))
            .on(res)
            .lasting(costs.kernel_overhead)
            .category(format!("wu.nccl.{kernel_name}"))
            .after(dep)
            .build();
        kernels.push((gpu, k));
    }

    if n == 1 {
        // Single GPU: the kernel overhead is the whole story.
        return kernels.into_iter().collect();
    }

    // The ring starts once every rank's kernel has launched.
    let start = graph
        .task(format!("{label}.ring.start"))
        .category("wu.nccl.sync")
        .after_all(kernels.iter().map(|&(_, k)| k))
        .build();

    // Every ring link carries passes*(n-1)/n * bytes, concurrently.
    let per_link_bytes = (passes * (n - 1) * bytes) / n;
    let mut link_tasks = Vec::new();
    for (i, &(from, to)) in ring.hops().iter().enumerate() {
        // The pipeline traverses each link passes*(n-1) chunk-steps.
        let steps = passes * (n - 1);
        let hop_latency = match topo.direct_link(from, to) {
            Some(l) => l.latency,
            None => topo.route(from, to).total_latency(),
        } + costs.step_overhead;
        let effective_bytes = (per_link_bytes as f64 / costs.bandwidth_efficiency.max(0.01)) as u64;
        // Successive collectives pipeline: a link is only *occupied*
        // for the serialisation (bandwidth) term, while the chunk-step
        // latency is a parallel delay — so back-to-back buckets stream
        // without accumulating per-call latency on the links (this is
        // the pipelining the paper credits NCCL with, §V-A/§V-B).
        let occupy = match topo.direct_link(from, to) {
            Some(l) => {
                let mut builder = graph
                    .task(format!("{label}.ring.hop{i}"))
                    .lasting(l.bandwidth.transfer_time(effective_bytes))
                    .category("wu.nccl.ring")
                    .after(start);
                if let Some(res) = net.direct_resource(topo, from, to) {
                    builder = builder.on(res);
                }
                builder.build()
            }
            None => {
                // Fallback rings (no NVLink cycle) bounce via the host:
                // store-and-forward, each hop serialising the payload
                // at its *own* link's bandwidth *on* that link's
                // per-direction resource, so concurrent fallback
                // transfers crossing the same PCIe/QPI leg contend
                // (the per-hop latency term is charged via
                // `total_latency` above).
                net.occupy_route(
                    graph,
                    topo,
                    from,
                    to,
                    effective_bytes,
                    &[start],
                    "wu.nccl.ring",
                    &format!("{label}.ring.hop{i}"),
                )
            }
        };
        let delay = graph
            .task(format!("{label}.ring.hop{i}.latency"))
            .lasting(hop_latency * steps)
            .category("wu.nccl.ring.latency")
            .after(start)
            .build();
        let hop_done = graph
            .task(format!("{label}.ring.hop{i}.done"))
            .category("wu.nccl.sync")
            .after(occupy)
            .after(delay)
            .build();
        link_tasks.push(hop_done);
    }

    // Completion barrier, then one done-marker per GPU.
    let done = graph
        .task(format!("{label}.ring.done"))
        .category("wu.nccl.sync")
        .after_all(link_tasks)
        .build();
    ring.devices()
        .iter()
        .map(|&gpu| {
            let t = graph
                .task(format!("{label}.done@{gpu}"))
                .category("wu.nccl.sync")
                .after(done)
                .build();
            (gpu, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::Engine;
    use voltascope_topo::dgx1_v100;

    struct Fixture {
        topo: Topology,
        graph: TaskGraph,
        net: LinkNetwork,
        compute: BTreeMap<Device, ResourceId>,
        ready: PerGpuDone,
    }

    fn fixture(gpus: usize) -> Fixture {
        let topo = dgx1_v100();
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        for g in 0..gpus {
            let d = Device::gpu(g as u8);
            let r = graph.add_resource(format!("{d}.compute"), 1);
            compute.insert(d, r);
            let t = graph.task(format!("bp@{d}")).category("bp").build();
            ready.insert(d, t);
        }
        Fixture {
            topo,
            graph,
            net,
            compute,
            ready,
        }
    }

    fn run_all_reduce(gpus: usize, bytes: u64, costs: &NcclCosts) -> SimSpan {
        let mut f = fixture(gpus);
        let ring = Ring::build(&f.topo, gpus);
        let done = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            bytes,
            &f.ready,
            &f.compute,
            costs,
            "ar",
        );
        assert_eq!(done.len(), gpus);
        Engine::new().run(&f.graph).unwrap().makespan()
    }

    #[test]
    fn single_gpu_all_reduce_is_pure_overhead() {
        let costs = NcclCosts::default();
        let t = run_all_reduce(1, 1 << 30, &costs);
        assert_eq!(t, costs.kernel_overhead);
    }

    #[test]
    fn ring_time_approaches_bandwidth_optimal() {
        let costs = NcclCosts {
            kernel_overhead: SimSpan::ZERO,
            epoch_setup: SimSpan::ZERO,
            step_overhead: SimSpan::ZERO,
            bandwidth_efficiency: 1.0,
            group_call_overhead: SimSpan::ZERO,
        };
        // 8 GPUs, 100 MB, bottleneck 25 GB/s single lanes:
        // 2*(7/8)*100MB / 25GB/s = 7 ms.
        let t = run_all_reduce(8, 100_000_000, &costs);
        let secs = t.as_secs_f64();
        assert!((0.007..0.0078).contains(&secs), "got {secs}");
    }

    #[test]
    fn all_reduce_scales_gently_with_gpu_count() {
        // Ring AllReduce volume per link is 2(N-1)/N — nearly flat in N.
        let costs = NcclCosts {
            kernel_overhead: SimSpan::ZERO,
            epoch_setup: SimSpan::ZERO,
            step_overhead: SimSpan::ZERO,
            bandwidth_efficiency: 1.0,
            group_call_overhead: SimSpan::ZERO,
        };
        let t2 = run_all_reduce(2, 200_000_000, &costs).as_secs_f64();
        let t8 = run_all_reduce(8, 200_000_000, &costs).as_secs_f64();
        // 2-GPU ring uses the 50 GB/s double link; 8-GPU bottlenecks at
        // 25 GB/s singles: expected ratio (7/4)/(1/2) * (25/50)... keep
        // loose: under 4x.
        assert!(t8 / t2 < 4.0, "t8/t2 = {}", t8 / t2);
    }

    #[test]
    fn broadcast_moves_half_the_all_reduce_volume() {
        let costs = NcclCosts {
            kernel_overhead: SimSpan::ZERO,
            epoch_setup: SimSpan::ZERO,
            step_overhead: SimSpan::ZERO,
            bandwidth_efficiency: 1.0,
            group_call_overhead: SimSpan::ZERO,
        };
        let mut f = fixture(4);
        let ring = Ring::build(&f.topo, 4);
        let ar = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            80_000_000,
            &f.ready,
            &f.compute,
            &costs,
            "ar",
        );
        let bc = broadcast(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            80_000_000,
            &ar,
            &f.compute,
            &costs,
            "bc",
        );
        let s = Engine::new().run(&f.graph).unwrap();
        let t_ar = s.finish_time(ar[&Device::gpu(0)]).as_secs_f64();
        let t_bc = s.finish_time(bc[&Device::gpu(0)]).as_secs_f64() - t_ar;
        assert!(
            (t_ar / t_bc - 2.0).abs() < 0.3,
            "allreduce {t_ar}, broadcast {t_bc}"
        );
    }

    #[test]
    fn kernel_overhead_lands_on_compute_streams() {
        let costs = NcclCosts::default();
        let mut f = fixture(2);
        let ring = Ring::build(&f.topo, 2);
        let _ = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            1 << 20,
            &f.ready,
            &f.compute,
            &costs,
            "ar",
        );
        let s = Engine::new().run(&f.graph).unwrap();
        for &res in f.compute.values() {
            assert_eq!(s.resource_stats(res).busy, costs.kernel_overhead);
        }
    }

    #[test]
    fn fallback_hops_use_store_and_forward_per_hop_pricing() {
        // Regression: the host-bounced ring fallback used to charge
        // `bottleneck_bandwidth.transfer_time(bytes * hop_count)` —
        // every hop at the *worst* link's speed. On a mixed-bandwidth
        // route (PCIe + QPI + PCIe) that overprices the QPI hop.
        let topo = voltascope_topo::pcie_only(2); // GPU0/cpu0, GPU1/cpu1
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        for g in 0..2u8 {
            let d = Device::gpu(g);
            compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
            ready.insert(d, graph.task(format!("bp@{d}")).category("bp").build());
        }
        let costs = NcclCosts {
            kernel_overhead: SimSpan::ZERO,
            epoch_setup: SimSpan::ZERO,
            step_overhead: SimSpan::ZERO,
            bandwidth_efficiency: 1.0,
            group_call_overhead: SimSpan::ZERO,
        };
        let ring = Ring::build(&topo, 2);
        let bytes = 96_000_000u64; // per-link: 2*(n-1)/n * bytes = bytes
        let _ = all_reduce(
            &mut graph, &net, &topo, &ring, bytes, &ready, &compute, &costs, "ar",
        );
        let makespan = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
        // Store-and-forward sum: PCIe (12 GB/s) + QPI (19.2 GB/s) + PCIe.
        let b = bytes as f64;
        let per_hop_sum = b / 12e9 + b / 19.2e9 + b / 12e9;
        // The old formula priced all three hops at the 12 GB/s bottleneck.
        let old_formula = 3.0 * b / 12e9;
        assert!(
            (makespan - per_hop_sum).abs() < 1e-4,
            "makespan {makespan} != per-hop sum {per_hop_sum}"
        );
        assert!(
            (makespan - old_formula).abs() > 1e-3,
            "makespan {makespan} indistinguishable from the old bottleneck formula {old_formula}"
        );
    }

    #[test]
    fn concurrent_fallback_transfers_contend_on_shared_pcie_legs() {
        // Regression: host-bounced fallback hops used to occupy *no*
        // link resources (`direct_resource` is None for routed pairs),
        // so two simultaneous fallback transfers over the same PCIe leg
        // were priced as if the leg were dedicated. They must
        // serialise on each shared per-direction leg.
        let topo = voltascope_topo::pcie_only(2);
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        for g in 0..2u8 {
            let d = Device::gpu(g);
            compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
            ready.insert(d, graph.task(format!("bp@{d}")).category("bp").build());
        }
        let costs = NcclCosts {
            kernel_overhead: SimSpan::ZERO,
            epoch_setup: SimSpan::ZERO,
            step_overhead: SimSpan::ZERO,
            bandwidth_efficiency: 1.0,
            group_call_overhead: SimSpan::ZERO,
        };
        let ring = Ring::build(&topo, 2);
        let bytes = 96_000_000u64; // per-link bytes = 2*(n-1)/n * bytes = bytes
        let a = all_reduce(
            &mut graph, &net, &topo, &ring, bytes, &ready, &compute, &costs, "ar1",
        );
        let _b = all_reduce(
            &mut graph, &net, &topo, &ring, bytes, &ready, &compute, &costs, "ar2",
        );
        assert_eq!(a.len(), 2);
        let makespan = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
        // One isolated transfer store-and-forwards PCIe (12 GB/s) + QPI
        // (19.2 GB/s) + PCIe: 8 + 5 + 8 = 21 ms. Both collectives cross
        // the same legs in the same direction, so the trailing PCIe leg
        // cannot finish its second 8 ms occupancy before ~29 ms.
        let b = bytes as f64;
        let per_hop_sum = b / 12e9 + b / 19.2e9 + b / 12e9;
        let contended = per_hop_sum + b / 12e9;
        assert!(
            makespan >= contended - 1e-3,
            "makespan {makespan} shows no contention (uncontended per-hop sum {per_hop_sum})"
        );
    }

    #[test]
    #[should_panic(expected = "no ready task")]
    fn missing_ready_task_panics() {
        let mut f = fixture(1);
        let ring = Ring::build(&f.topo, 2); // ring covers GPU1, fixture doesn't
        let costs = NcclCosts::default();
        let _ = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            1,
            &f.ready,
            &f.compute,
            &costs,
            "ar",
        );
    }
}

/// Emits a *tree* AllReduce of `bytes`: reduce up a binary tree rooted
/// at the first GPU, then broadcast back down. This is the algorithm
/// NCCL 2.4 added shortly after the paper's study; it trades the
/// ring's `2(N-1)` latency steps for `2 log2 N`, fixing exactly the
/// small-message behaviour the paper saw hurt LeNet (§V-A). Chunked
/// pipelining means each tree edge is *occupied* only for its
/// serialisation time while depth contributes latency.
///
/// `gpus` must be in rank order; non-adjacent tree edges fall back to
/// the topology's relay/host routes for their bandwidth cost.
///
/// # Panics
///
/// Panics if `ready`/`compute` do not cover `gpus`, or `gpus` is empty.
#[allow(clippy::too_many_arguments)]
pub fn tree_all_reduce(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    gpus: &[Device],
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    label: &str,
) -> PerGpuDone {
    assert!(!gpus.is_empty(), "tree needs at least one GPU");
    let n = gpus.len();
    // Per-rank collective kernels, as in the ring algorithms.
    let mut kernels = Vec::new();
    for &gpu in gpus {
        let dep = *ready
            .get(&gpu)
            .unwrap_or_else(|| panic!("no ready task for {gpu}"));
        let res = *compute
            .get(&gpu)
            .unwrap_or_else(|| panic!("no compute resource for {gpu}"));
        let k = graph
            .task(format!("{label}.TreeReduceKernel@{gpu}"))
            .on(res)
            .lasting(costs.kernel_overhead)
            .category("wu.nccl.TreeReduceKernel")
            .after(dep)
            .build();
        kernels.push((gpu, k));
    }
    if n == 1 {
        return kernels.into_iter().collect();
    }
    let start = graph
        .task(format!("{label}.tree.start"))
        .category("wu.nccl.sync")
        .after_all(kernels.iter().map(|&(_, k)| k))
        .build();

    // Binary tree edges: child i -> parent (i-1)/2 in rank space.
    let effective = (bytes as f64 / costs.bandwidth_efficiency.max(0.01)) as u64;
    let mut edge_tasks = Vec::new();
    let mut depth = 0usize;
    {
        let mut span = 1usize;
        while span < n {
            span *= 2;
            depth += 1;
        }
    }
    for child in 1..n {
        let parent = (child - 1) / 2;
        // Up (reduce) and down (broadcast) both cross this edge once.
        for dir in 0..2 {
            let (from, to) = if dir == 0 {
                (gpus[child], gpus[parent])
            } else {
                (gpus[parent], gpus[child])
            };
            let t = net.transfer(
                graph,
                topo,
                from,
                to,
                effective,
                &[start],
                "wu.nccl.tree",
                &format!("{label}.tree.{from}>{to}"),
            );
            edge_tasks.push(t);
        }
    }
    // Pipeline-depth latency: 2*depth chunk steps.
    let latency = graph
        .task(format!("{label}.tree.latency"))
        .lasting(costs.step_overhead * (2 * depth as u64))
        .category("wu.nccl.tree.latency")
        .after(start)
        .build();
    let done = graph
        .task(format!("{label}.tree.done"))
        .category("wu.nccl.sync")
        .after_all(edge_tasks)
        .after(latency)
        .build();
    gpus.iter()
        .map(|&gpu| {
            let t = graph
                .task(format!("{label}.tree.done@{gpu}"))
                .category("wu.nccl.sync")
                .after(done)
                .build();
            (gpu, t)
        })
        .collect()
}

#[cfg(test)]
mod tree_tests {
    use super::*;
    use voltascope_sim::Engine;
    use voltascope_topo::dgx1_v100;

    fn fixture(
        gpus: usize,
    ) -> (
        Topology,
        TaskGraph,
        LinkNetwork,
        BTreeMap<Device, ResourceId>,
        PerGpuDone,
        Vec<Device>,
    ) {
        let topo = dgx1_v100();
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        let mut devs = Vec::new();
        for g in 0..gpus {
            let d = Device::gpu(g as u8);
            devs.push(d);
            compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
            let t = graph.task(format!("bp@{d}")).category("bp").build();
            ready.insert(d, t);
        }
        (topo, graph, net, compute, ready, devs)
    }

    #[test]
    fn tree_all_reduce_completes_for_all_gpu_counts() {
        for gpus in [1usize, 2, 4, 8] {
            let (topo, mut graph, net, compute, ready, devs) = fixture(gpus);
            let done = tree_all_reduce(
                &mut graph,
                &net,
                &topo,
                &devs,
                1 << 20,
                &ready,
                &compute,
                &NcclCosts::default(),
                "tar",
            );
            assert_eq!(done.len(), gpus);
            let s = Engine::new().run(&graph).unwrap();
            assert!(!s.makespan().is_zero());
        }
    }

    #[test]
    fn tree_beats_ring_on_latency_bound_small_messages() {
        // Tiny buckets: ring pays 2(N-1) chunk steps, tree 2 log2 N.
        let costs = NcclCosts::default();
        let small = 4 * 1024u64;

        let (topo, mut g1, net1, c1, r1, devs) = fixture(8);
        let ring = Ring::build(&topo, 8);
        let _ = all_reduce(
            &mut g1, &net1, &topo, &ring, small, &r1, &c1, &costs, "ring",
        );
        let t_ring = Engine::new().run(&g1).unwrap().makespan();

        let (topo2, mut g2, net2, c2, r2, devs2) = fixture(8);
        let _ = tree_all_reduce(
            &mut g2, &net2, &topo2, &devs2, small, &r2, &c2, &costs, "tree",
        );
        let t_tree = Engine::new().run(&g2).unwrap().makespan();

        assert!(
            t_tree < t_ring,
            "tree {t_tree} should beat ring {t_ring} on small messages"
        );
        let _ = devs;
    }

    #[test]
    fn ring_beats_tree_on_bandwidth_bound_large_messages() {
        // Large buckets: the tree root's links carry multiple children's
        // full payloads; the ring splits the load across all links.
        let costs = NcclCosts::default();
        let big = 200_000_000u64;

        let (topo, mut g1, net1, c1, r1, _devs) = fixture(8);
        let ring = Ring::build(&topo, 8);
        let _ = all_reduce(&mut g1, &net1, &topo, &ring, big, &r1, &c1, &costs, "ring");
        let t_ring = Engine::new().run(&g1).unwrap().makespan();

        let (topo2, mut g2, net2, c2, r2, devs2) = fixture(8);
        let _ = tree_all_reduce(
            &mut g2, &net2, &topo2, &devs2, big, &r2, &c2, &costs, "tree",
        );
        let t_tree = Engine::new().run(&g2).unwrap().makespan();

        assert!(
            t_ring < t_tree,
            "ring {t_ring} should beat tree {t_tree} on large messages"
        );
    }
}
