//! Timing models for NCCL-style collectives.
//!
//! NCCL's ring algorithms chunk the payload and pipeline it around the
//! ring, so every link carries `2(N-1)/N x bytes` for AllReduce and
//! `(N-1)/N x bytes` for Broadcast, all links active concurrently. The
//! price is a fixed per-call cost: MXNet launches `ReduceKernel` /
//! `BroadcastKernel` on every GPU for every bucket — present even on a
//! single GPU, which is exactly the "NCCL overhead" the paper isolates
//! in Table II (§V-B).
//!
//! Each collective takes a [`Selection`] — the (algorithm, protocol,
//! channels) point chosen by [`crate::tuner`] or pinned by the caller.
//! The protocol scales the wire volume (LL moves 2x the payload, half
//! of it flags) and the per-step latency; the channel count splits the
//! payload across parallel ring/tree instances, each subject to its
//! protocol's per-channel processing-rate cap. [`Selection::PAPER`]
//! (single-channel Simple ring) reproduces the pre-protocol model
//! exactly.

use std::collections::BTreeMap;

use voltascope_sim::{ResourceId, SimSpan, TaskGraph, TaskId};
use voltascope_topo::{Bandwidth, Device, Topology};

use crate::network::LinkNetwork;
use crate::protocol::{
    Algorithm, BandwidthEfficiency, CommError, Protocol, Selection, TuningSpace,
};
use crate::ring::Ring;

/// Fixed-cost parameters of the NCCL-style backend.
#[derive(Debug, Clone)]
pub struct NcclCosts {
    /// GPU time of the per-call `ReduceKernel`/`BroadcastKernel` on
    /// every rank, charged once per collective invocation (per
    /// gradient bucket). This is what fails to amortise on small
    /// networks (Table II).
    pub kernel_overhead: SimSpan,
    /// One-time per-epoch cost of communicator/kvstore setup on each
    /// GPU. Dominates LeNet's epoch at large batch sizes, which is why
    /// the paper sees NCCL overhead *grow* with batch size for small
    /// networks (§V-B).
    pub epoch_setup: SimSpan,
    /// Per-chunk-step protocol cost added to the link latency for the
    /// *Simple* protocol: flag checks and intermediate-buffer
    /// synchronisation of the ring pipeline. LL/LL128 pay a scaled
    /// fraction ([`Protocol::step_overhead`]). Dominates small-message
    /// collectives (LeNet's 5 buckets), which is part of why P2P wins
    /// there (§V-A).
    pub step_overhead: SimSpan,
    /// Fraction of raw link bandwidth the ring pipeline sustains
    /// (NCCL-2.0-era bus-bandwidth measurements on DGX-1V land at
    /// 50-80% of the NVLink peak for medium message sizes). Validated
    /// at construction — see [`BandwidthEfficiency`].
    pub bandwidth_efficiency: BandwidthEfficiency,
    /// Host-side cost per GPU per iteration of assembling the grouped
    /// collective calls (the MXNet-NCCL kvstore path marshals every
    /// key into a group launch on its scheduling thread). A fixed
    /// per-iteration tax that a small workload like LeNet cannot
    /// amortise — the paper's "overhead associated with incorporating
    /// NCCL into MXNet" (§V-A).
    pub group_call_overhead: SimSpan,
    /// The (algorithm, protocol, channels) candidate space the
    /// auto-tuner searches per message size. Defaults to
    /// [`TuningSpace::from_env`]: the calibrated paper singleton
    /// unless `VOLTASCOPE_NCCL_PROTO` overrides it.
    pub tuning: TuningSpace,
    /// Emit link occupancy as *chained chunk tasks* at the protocol's
    /// step granularity ([`Protocol::chunk_bytes`]) instead of one
    /// whole-transfer task. Each chunk releases the per-direction link
    /// resource when it completes, so two collectives sharing a link
    /// interleave chunk-by-chunk under FIFO arbitration — the way
    /// NCCL's slot-recycled pipeline actually shares a link — instead
    /// of serialising whole transfers. Off by default: the calibrated
    /// golden scenarios are priced on whole-transfer occupancy, and
    /// chunking multiplies the task count by up to 32 per hop.
    /// Host-bounced fallback routes stay unchunked either way (their
    /// store-and-forward legs already occupy each PCIe/QPI resource
    /// separately).
    pub chunking: bool,
}

impl Default for NcclCosts {
    fn default() -> Self {
        NcclCosts {
            kernel_overhead: SimSpan::from_micros(20),
            epoch_setup: SimSpan::from_millis(120),
            step_overhead: SimSpan::from_micros(4),
            bandwidth_efficiency: BandwidthEfficiency::default(),
            group_call_overhead: SimSpan::from_micros(300),
            tuning: TuningSpace::from_env(),
            chunking: false,
        }
    }
}

/// The per-GPU completion tasks of a collective call.
pub type PerGpuDone = BTreeMap<Device, TaskId>;

/// Bytes each ring link carries for one channel of an `n`-rank
/// collective: `ceil(passes * (n - 1) * bytes / n)`.
///
/// The product is taken in 128-bit arithmetic and the division rounds
/// *up* — the old u64 formula wrapped silently for multi-GB payloads
/// (14x a payload overflows u64 two orders of magnitude before the
/// per-link result does) and its floor division under-accounted up to
/// `n - 1` bytes per link.
///
/// # Errors
///
/// [`CommError::ArithmeticOverflow`] if the per-link volume itself
/// exceeds `u64::MAX`.
pub fn ring_per_link_bytes(passes: u64, n: u64, bytes: u64) -> Result<u64, CommError> {
    debug_assert!(n >= 2, "a ring needs at least two ranks");
    let chunks = u128::from(passes) * u128::from(n - 1) * u128::from(bytes);
    u64::try_from(chunks.div_ceil(u128::from(n))).map_err(|_| CommError::ArithmeticOverflow {
        context: "ring per-link bytes",
        bytes,
    })
}

/// Bytes actually serialised on the wire for `data_bytes` of payload:
/// the protocol's framing expansion divided by the sustained-bandwidth
/// fraction, rounded up.
///
/// Computed as `ceil(data * wire_den * 10^6 / (wire_num * eff_ppm))`
/// in 128-bit integer arithmetic. The old code round-tripped through
/// `f64` (`(bytes as f64 / eff) as u64`), which loses low bits above
/// 2^53 bytes and truncates toward zero — under-accounting the wire
/// time.
///
/// # Errors
///
/// [`CommError::ArithmeticOverflow`] if the wire volume exceeds
/// `u64::MAX`.
pub fn effective_wire_bytes(
    data_bytes: u64,
    protocol: Protocol,
    efficiency: BandwidthEfficiency,
) -> Result<u64, CommError> {
    let (data, wire) = protocol.wire_fraction();
    let numer = u128::from(data_bytes) * u128::from(wire) * 1_000_000u128;
    let denom = u128::from(data) * u128::from(efficiency.ppm());
    u64::try_from(numer.div_ceil(denom)).map_err(|_| CommError::ArithmeticOverflow {
        context: "effective wire bytes",
        bytes: data_bytes,
    })
}

/// Upper bound on chunk tasks per hop when [`NcclCosts::chunking`] is
/// on: beyond this the split stops refining arbitration granularity
/// and only inflates the task graph.
const MAX_CHUNKS_PER_HOP: u64 = 32;

/// Exact byte split of a `wire_bytes` transfer into chunk tasks at the
/// protocol's step granularity: `ceil(wire / chunk_bytes)` chunks,
/// capped at [`MAX_CHUNKS_PER_HOP`], sizes differing by at most one
/// byte and summing to exactly `wire_bytes` (no rounding loss — the
/// byte-conservation property the metamorphic suite checks).
pub fn chunk_split(wire_bytes: u64, protocol: Protocol) -> Vec<u64> {
    let k = wire_bytes
        .div_ceil(protocol.chunk_bytes())
        .clamp(1, MAX_CHUNKS_PER_HOP);
    let (base, rem) = (wire_bytes / k, wire_bytes % k);
    (0..k).map(|i| base + u64::from(i < rem)).collect()
}

/// Emits the occupancy of one direct-link hop as a chain of chunk
/// tasks on `res`: chunk `j+1` starts only after chunk `j` completes,
/// so the link resource is *released between chunks* and a competing
/// collective's queued chunk can slot in (FIFO per-direction
/// arbitration). `first_extra` is charged on the first chunk (the
/// direct-transfer latency term of the tree edges; zero for ring hops,
/// whose latency is a parallel delay task).
#[allow(clippy::too_many_arguments)]
fn emit_chunked_hop(
    graph: &mut TaskGraph,
    res: Option<ResourceId>,
    bandwidth: Bandwidth,
    first_extra: SimSpan,
    wire_bytes: u64,
    protocol: Protocol,
    start: TaskId,
    category: &str,
    label: &str,
) -> TaskId {
    let chunks = chunk_split(wire_bytes, protocol);
    let mut prev: Option<TaskId> = None;
    for (j, &cb) in chunks.iter().enumerate() {
        let lasting = if j == 0 {
            first_extra + bandwidth.transfer_time(cb)
        } else {
            bandwidth.transfer_time(cb)
        };
        let mut builder = graph
            .task(format!("{label}.c{j}"))
            .lasting(lasting)
            .category(category);
        if let Some(r) = res {
            builder = builder.on(r);
        }
        builder = match prev {
            Some(p) => builder.after(p),
            None => builder.after(start),
        };
        prev = Some(builder.build());
    }
    prev.expect("chunk_split returns at least one chunk")
}

/// Emits an NCCL-style AllReduce of `bytes` per rank, running the
/// algorithm `sel` names (ring, or the NCCL-2.4 tree over the ring's
/// rank order).
///
/// `ready` maps each participating GPU to the task after which its
/// contribution (gradient bucket) is available; `compute` maps each
/// GPU to its compute-stream resource (the overhead kernels occupy
/// it). Returns each GPU's completion task.
///
/// # Errors
///
/// [`CommError::ArithmeticOverflow`] if a wire-volume computation
/// exceeds `u64::MAX`.
///
/// # Panics
///
/// Panics if `ready`/`compute` do not cover the ring's devices.
#[allow(clippy::too_many_arguments)]
pub fn all_reduce(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    sel: &Selection,
    label: &str,
) -> Result<PerGpuDone, CommError> {
    match sel.algorithm {
        Algorithm::Ring => ring_collective(
            graph,
            net,
            topo,
            ring,
            bytes,
            ready,
            compute,
            costs,
            sel,
            label,
            "ReduceKernel",
            2,
        ),
        Algorithm::Tree => {
            // NCCL's tree is laid out over rank order, not the ring
            // traversal order, so sort the participants.
            let mut devs = ring.devices().to_vec();
            devs.sort();
            tree_all_reduce(
                graph, net, topo, &devs, bytes, ready, compute, costs, sel, label,
            )
        }
    }
}

/// Emits an NCCL-style ring Broadcast of `bytes`.
///
/// Same contract as [`all_reduce`]; each link carries `(N-1)/N x
/// bytes`. Broadcast is always ring-shaped — NCCL's tree algorithm
/// only applies to AllReduce — so `sel.algorithm` is ignored and only
/// the protocol and channel axes apply.
///
/// # Errors
///
/// [`CommError::ArithmeticOverflow`] if a wire-volume computation
/// exceeds `u64::MAX`.
///
/// # Panics
///
/// Panics if `ready`/`compute` do not cover the ring's devices.
#[allow(clippy::too_many_arguments)]
pub fn broadcast(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    sel: &Selection,
    label: &str,
) -> Result<PerGpuDone, CommError> {
    ring_collective(
        graph,
        net,
        topo,
        ring,
        bytes,
        ready,
        compute,
        costs,
        sel,
        label,
        "BroadcastKernel",
        1,
    )
}

/// Per-channel protocol processing time for `wire_bytes`, if the
/// protocol is rate-capped: an LL/LL128 channel's SM-side line packing
/// and flag spinning cannot feed an NVLink lane at line rate. This is
/// GPU-side work, so it runs *parallel* to the link occupancy (it does
/// not hold the link resource) — which is exactly why NCCL spreads
/// capped protocols over more channels: each channel's cap applies to
/// its own share only.
fn protocol_processing_time(wire_bytes: u64, protocol: Protocol) -> Option<SimSpan> {
    protocol
        .channel_rate_cap()
        .map(|cap| SimSpan::from_secs_f64(wire_bytes as f64 / cap))
}

/// Sustained per-GPU stream-processing rate of the tree kernels, in
/// bytes/s: one NVLink-lane's worth (25 GB/s). A ring rank drives
/// exactly one send and one receive stream, so its engine work is
/// already priced by the link occupancy; a tree *interior* rank fans
/// out — it must push the payload up to its parent *and* down to two
/// children (3 send streams) through the same per-GPU NCCL
/// receive/reduce/copy path, shared by every channel. This engine
/// serialisation is what keeps measured single-node tree AllReduce bus
/// bandwidth well below ring's at large sizes (arXiv:2507.04786 §V)
/// no matter how many channels are opened, and it is why the tuner's
/// large-message choice crosses back to rings.
const TREE_ENGINE_BYTES_PER_SEC: f64 = 25.0e9;

/// One channel instance's engine occupancy on GPU `streams x
/// wire_bytes` through the shared tree processing path.
fn tree_engine_time(wire_bytes: u64, streams: u64) -> SimSpan {
    let total = u128::from(streams) * u128::from(wire_bytes);
    SimSpan::from_secs_f64(total as f64 / TREE_ENGINE_BYTES_PER_SEC)
}

#[allow(clippy::too_many_arguments)]
fn ring_collective(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    sel: &Selection,
    label: &str,
    kernel_name: &str,
    passes: u64,
) -> Result<PerGpuDone, CommError> {
    let n = ring.len() as u64;
    // Per-rank collective kernels: occupy the compute stream for the
    // fixed overhead plus their share of the data movement work.
    let mut kernels = Vec::new();
    for &gpu in ring.devices() {
        let dep = *ready
            .get(&gpu)
            .unwrap_or_else(|| panic!("no ready task for {gpu}"));
        let res = *compute
            .get(&gpu)
            .unwrap_or_else(|| panic!("no compute resource for {gpu}"));
        let k = graph
            .task(format!("{label}.{kernel_name}@{gpu}"))
            .on(res)
            .lasting(costs.kernel_overhead)
            .category(format!("wu.nccl.{kernel_name}"))
            .after(dep)
            .build();
        kernels.push((gpu, k));
    }

    if n == 1 {
        // Single GPU: the kernel overhead is the whole story.
        return Ok(kernels.into_iter().collect());
    }

    // The ring starts once every rank's kernel has launched.
    let start = graph
        .task(format!("{label}.ring.start"))
        .category("wu.nccl.sync")
        .after_all(kernels.iter().map(|&(_, k)| k))
        .build();

    // Channels split the payload into parallel ring instances; every
    // instance still traverses the same physical links, so bandwidth
    // serialises on the link resources while the per-channel protocol
    // rate caps stop stacking.
    let chans = u64::from(sel.channels.max(1));
    let ch_bytes = bytes.div_ceil(chans);
    // Every ring link carries passes*(n-1)/n x its channel's bytes,
    // concurrently.
    let per_link_bytes = ring_per_link_bytes(passes, n, ch_bytes)?;
    let wire_bytes =
        effective_wire_bytes(per_link_bytes, sel.protocol, costs.bandwidth_efficiency)?;
    let step_overhead = sel.protocol.step_overhead(costs.step_overhead);
    let mut link_tasks = Vec::new();
    for ch in 0..chans {
        let chp = if chans == 1 {
            String::new()
        } else {
            format!(".ch{ch}")
        };
        for (i, &(from, to)) in ring.hops().iter().enumerate() {
            // The pipeline traverses each link passes*(n-1) chunk-steps.
            let steps = passes * (n - 1);
            let hop_latency = match topo.direct_link(from, to) {
                Some(l) => l.latency,
                None => topo.route(from, to).total_latency(),
            } + step_overhead;
            // Successive collectives pipeline: a link is only *occupied*
            // for the serialisation (bandwidth) term, while the chunk-step
            // latency is a parallel delay — so back-to-back buckets stream
            // without accumulating per-call latency on the links (this is
            // the pipelining the paper credits NCCL with, §V-A/§V-B).
            let occupy = match topo.direct_link(from, to) {
                Some(l) if costs.chunking => emit_chunked_hop(
                    graph,
                    net.direct_resource(topo, from, to),
                    l.bandwidth,
                    SimSpan::ZERO,
                    wire_bytes,
                    sel.protocol,
                    start,
                    "wu.nccl.ring",
                    &format!("{label}.ring{chp}.hop{i}"),
                ),
                Some(l) => {
                    let mut builder = graph
                        .task(format!("{label}.ring{chp}.hop{i}"))
                        .lasting(l.bandwidth.transfer_time(wire_bytes))
                        .category("wu.nccl.ring")
                        .after(start);
                    if let Some(res) = net.direct_resource(topo, from, to) {
                        builder = builder.on(res);
                    }
                    builder.build()
                }
                None => {
                    // Fallback rings (no NVLink cycle) bounce via the host:
                    // store-and-forward, each hop serialising the payload
                    // at its *own* link's bandwidth *on* that link's
                    // per-direction resource, so concurrent fallback
                    // transfers crossing the same PCIe/QPI leg contend
                    // (the per-hop latency term is charged via
                    // `total_latency` above; the protocol rate cap is
                    // irrelevant on these PCIe-bound paths).
                    net.occupy_route(
                        graph,
                        topo,
                        from,
                        to,
                        wire_bytes,
                        &[start],
                        "wu.nccl.ring",
                        &format!("{label}.ring{chp}.hop{i}"),
                    )
                }
            };
            let delay = graph
                .task(format!("{label}.ring{chp}.hop{i}.latency"))
                .lasting(hop_latency * steps)
                .category("wu.nccl.ring.latency")
                .after(start)
                .build();
            // Rate-capped protocols also wait on their channel's
            // GPU-side line processing, which runs off the link.
            let proto = protocol_processing_time(wire_bytes, sel.protocol).map(|proc_time| {
                graph
                    .task(format!("{label}.ring{chp}.hop{i}.proto"))
                    .lasting(proc_time)
                    .category("wu.nccl.ring.proto")
                    .after(start)
                    .build()
            });
            let mut hop_done = graph
                .task(format!("{label}.ring{chp}.hop{i}.done"))
                .category("wu.nccl.sync")
                .after(occupy)
                .after(delay);
            if let Some(p) = proto {
                hop_done = hop_done.after(p);
            }
            link_tasks.push(hop_done.build());
        }
    }

    // Completion barrier, then one done-marker per GPU.
    let done = graph
        .task(format!("{label}.ring.done"))
        .category("wu.nccl.sync")
        .after_all(link_tasks)
        .build();
    Ok(ring
        .devices()
        .iter()
        .map(|&gpu| {
            let t = graph
                .task(format!("{label}.done@{gpu}"))
                .category("wu.nccl.sync")
                .after(done)
                .build();
            (gpu, t)
        })
        .collect())
}

/// Emits a *tree* AllReduce of `bytes`: reduce up a binary tree rooted
/// at the first GPU, then broadcast back down. This is the algorithm
/// NCCL 2.4 added shortly after the paper's study; it trades the
/// ring's `2(N-1)` latency steps for `2 log2 N`, fixing exactly the
/// small-message behaviour the paper saw hurt LeNet (§V-A). Chunked
/// pipelining means each tree edge is *occupied* only for its
/// serialisation time while depth contributes latency; the bandwidth
/// floor is each rank's *engine* occupancy — interior ranks funnel
/// three payload streams through one per-GPU processing path shared by
/// all channels ([`TREE_ENGINE_BYTES_PER_SEC`]), which is what keeps
/// large-message trees slower than rings however many channels open.
///
/// `gpus` must be in rank order; non-adjacent tree edges fall back to
/// the topology's relay/host routes for their bandwidth cost.
/// `sel.algorithm` is ignored (this *is* the tree); the protocol and
/// channel axes apply as in the ring emission.
///
/// # Errors
///
/// [`CommError::ArithmeticOverflow`] if a wire-volume computation
/// exceeds `u64::MAX`.
///
/// # Panics
///
/// Panics if `ready`/`compute` do not cover `gpus`, or `gpus` is empty.
#[allow(clippy::too_many_arguments)]
pub fn tree_all_reduce(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    topo: &Topology,
    gpus: &[Device],
    bytes: u64,
    ready: &PerGpuDone,
    compute: &BTreeMap<Device, ResourceId>,
    costs: &NcclCosts,
    sel: &Selection,
    label: &str,
) -> Result<PerGpuDone, CommError> {
    assert!(!gpus.is_empty(), "tree needs at least one GPU");
    let n = gpus.len();
    // Per-rank collective kernels, as in the ring algorithms.
    let mut kernels = Vec::new();
    for &gpu in gpus {
        let dep = *ready
            .get(&gpu)
            .unwrap_or_else(|| panic!("no ready task for {gpu}"));
        let res = *compute
            .get(&gpu)
            .unwrap_or_else(|| panic!("no compute resource for {gpu}"));
        let k = graph
            .task(format!("{label}.TreeReduceKernel@{gpu}"))
            .on(res)
            .lasting(costs.kernel_overhead)
            .category("wu.nccl.TreeReduceKernel")
            .after(dep)
            .build();
        kernels.push((gpu, k));
    }
    if n == 1 {
        return Ok(kernels.into_iter().collect());
    }
    let start = graph
        .task(format!("{label}.tree.start"))
        .category("wu.nccl.sync")
        .after_all(kernels.iter().map(|&(_, k)| k))
        .build();

    // Binary tree edges: child i -> parent (i-1)/2 in rank space; each
    // channel instance carries its ceil-share of the payload.
    let chans = u64::from(sel.channels.max(1));
    let ch_bytes = bytes.div_ceil(chans);
    let wire_bytes = effective_wire_bytes(ch_bytes, sel.protocol, costs.bandwidth_efficiency)?;
    // Each GPU's tree processing path is one capacity-1 resource shared
    // by every channel: opening more channels splits the payload but
    // not the engine, so an interior rank's 3-stream fan-out stays
    // serialised (see [`TREE_ENGINE_BYTES_PER_SEC`]).
    let engine: BTreeMap<Device, ResourceId> = gpus
        .iter()
        .map(|&gpu| {
            (
                gpu,
                graph.add_resource(format!("{label}.tree.engine@{gpu}"), 1),
            )
        })
        .collect();
    let mut edge_tasks = Vec::new();
    let mut depth = 0usize;
    {
        let mut span = 1usize;
        while span < n {
            span *= 2;
            depth += 1;
        }
    }
    for ch in 0..chans {
        let chp = if chans == 1 {
            String::new()
        } else {
            format!(".ch{ch}")
        };
        for child in 1..n {
            let parent = (child - 1) / 2;
            // Up (reduce) and down (broadcast) both cross this edge once.
            for dir in 0..2 {
                let (from, to) = if dir == 0 {
                    (gpus[child], gpus[parent])
                } else {
                    (gpus[parent], gpus[child])
                };
                // Direct tree edges chunk like ring hops when chunking
                // is on; relayed/host-bounced edges keep the staged
                // transfer emission (their legs already occupy each
                // intermediate resource separately).
                let t = match topo.direct_link(from, to) {
                    Some(l) if costs.chunking => emit_chunked_hop(
                        graph,
                        net.direct_resource(topo, from, to),
                        l.bandwidth,
                        l.latency,
                        wire_bytes,
                        sel.protocol,
                        start,
                        "wu.nccl.tree",
                        &format!("{label}.tree{chp}.{from}>{to}"),
                    ),
                    _ => net.transfer(
                        graph,
                        topo,
                        from,
                        to,
                        wire_bytes,
                        &[start],
                        "wu.nccl.tree",
                        &format!("{label}.tree{chp}.{from}>{to}"),
                    ),
                };
                edge_tasks.push(t);
            }
        }
        // Per-channel GPU-side line processing for rate-capped
        // protocols, parallel to the edge transfers.
        if let Some(proc_time) = protocol_processing_time(wire_bytes, sel.protocol) {
            let proto = graph
                .task(format!("{label}.tree{chp}.proto"))
                .lasting(proc_time)
                .category("wu.nccl.tree.proto")
                .after(start)
                .build();
            edge_tasks.push(proto);
        }
        // Per-GPU engine occupancy: `streams` concurrent payload
        // streams funnel through each rank's shared processing path.
        // Interior ranks drive 3 (up-send plus two down-sends), the
        // root its children's count, leaves 1.
        for (i, &gpu) in gpus.iter().enumerate() {
            let children = (1..n).filter(|&c| (c - 1) / 2 == i).count() as u64;
            let streams = children + u64::from(i != 0);
            let eng = graph
                .task(format!("{label}.tree{chp}.engine@{gpu}"))
                .on(engine[&gpu])
                .lasting(tree_engine_time(wire_bytes, streams))
                .category("wu.nccl.tree.engine")
                .after(start)
                .build();
            edge_tasks.push(eng);
        }
    }
    // Pipeline-depth latency: 2*depth chunk steps at the protocol's
    // step cost.
    let latency = graph
        .task(format!("{label}.tree.latency"))
        .lasting(sel.protocol.step_overhead(costs.step_overhead) * (2 * depth as u64))
        .category("wu.nccl.tree.latency")
        .after(start)
        .build();
    let done = graph
        .task(format!("{label}.tree.done"))
        .category("wu.nccl.sync")
        .after_all(edge_tasks)
        .after(latency)
        .build();
    Ok(gpus
        .iter()
        .map(|&gpu| {
            let t = graph
                .task(format!("{label}.tree.done@{gpu}"))
                .category("wu.nccl.sync")
                .after(done)
                .build();
            (gpu, t)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::Engine;
    use voltascope_topo::dgx1_v100;

    fn zero_costs(efficiency: f64) -> NcclCosts {
        NcclCosts {
            kernel_overhead: SimSpan::ZERO,
            epoch_setup: SimSpan::ZERO,
            step_overhead: SimSpan::ZERO,
            bandwidth_efficiency: BandwidthEfficiency::new(efficiency).unwrap(),
            group_call_overhead: SimSpan::ZERO,
            tuning: TuningSpace::paper(),
            chunking: false,
        }
    }

    fn paper_costs() -> NcclCosts {
        NcclCosts {
            tuning: TuningSpace::paper(),
            ..NcclCosts::default()
        }
    }

    struct Fixture {
        topo: Topology,
        graph: TaskGraph,
        net: LinkNetwork,
        compute: BTreeMap<Device, ResourceId>,
        ready: PerGpuDone,
    }

    fn fixture(gpus: usize) -> Fixture {
        let topo = dgx1_v100();
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        for g in 0..gpus {
            let d = Device::gpu(g as u8);
            let r = graph.add_resource(format!("{d}.compute"), 1);
            compute.insert(d, r);
            let t = graph.task(format!("bp@{d}")).category("bp").build();
            ready.insert(d, t);
        }
        Fixture {
            topo,
            graph,
            net,
            compute,
            ready,
        }
    }

    fn run_all_reduce(gpus: usize, bytes: u64, costs: &NcclCosts) -> SimSpan {
        let mut f = fixture(gpus);
        let ring = Ring::build(&f.topo, gpus);
        let done = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            bytes,
            &f.ready,
            &f.compute,
            costs,
            &Selection::PAPER,
            "ar",
        )
        .unwrap();
        assert_eq!(done.len(), gpus);
        Engine::new().run(&f.graph).unwrap().makespan()
    }

    #[test]
    fn chunk_split_conserves_bytes_exactly() {
        for wire in [
            0u64,
            1,
            (512 << 10) - 1,
            512 << 10,
            (512 << 10) + 1,
            100_000_000,
            u64::MAX / 2,
        ] {
            for p in Protocol::ALL {
                let chunks = chunk_split(wire, p);
                assert!(!chunks.is_empty() && chunks.len() <= 32);
                assert_eq!(chunks.iter().sum::<u64>(), wire, "split of {wire} for {p}");
                let min = *chunks.iter().min().unwrap();
                let max = *chunks.iter().max().unwrap();
                assert!(max - min <= 1, "uneven split of {wire} for {p}");
            }
        }
        // Sub-granularity transfers stay a single task.
        assert_eq!(chunk_split(4 << 10, Protocol::Simple).len(), 1);
    }

    #[test]
    fn a_solo_chunked_ring_matches_the_whole_transfer_emission() {
        // With the link to itself, chunking changes arbitration
        // granularity but not the serialisation total: the makespans
        // agree up to per-chunk nanosecond rounding.
        let whole = run_all_reduce(4, 80_000_000, &zero_costs(1.0));
        let mut costs = zero_costs(1.0);
        costs.chunking = true;
        let chunked = run_all_reduce(4, 80_000_000, &costs);
        let diff = (chunked.as_secs_f64() - whole.as_secs_f64()).abs();
        assert!(diff < 1e-6, "chunked {chunked} vs whole {whole}");
    }

    /// Two collectives contending for the same ring links: with
    /// whole-transfer occupancy the big one (emitted first) holds every
    /// link for its full serialisation and the small one waits; with
    /// chunking the small one's chunks interleave and it finishes
    /// strictly earlier, while the total (makespan) stays conserved.
    #[test]
    fn chunk_interleaving_lets_a_small_collective_slip_past_a_big_one() {
        let run = |chunking: bool| {
            let mut costs = zero_costs(1.0);
            costs.chunking = chunking;
            let mut f = fixture(2);
            let ring = Ring::build(&f.topo, 2);
            let big = all_reduce(
                &mut f.graph,
                &f.net,
                &f.topo,
                &ring,
                64 << 20,
                &f.ready,
                &f.compute,
                &costs,
                &Selection::PAPER,
                "big",
            )
            .unwrap();
            let small = all_reduce(
                &mut f.graph,
                &f.net,
                &f.topo,
                &ring,
                8 << 20,
                &f.ready,
                &f.compute,
                &costs,
                &Selection::PAPER,
                "small",
            )
            .unwrap();
            let s = Engine::new().run(&f.graph).unwrap();
            let finish = |done: &PerGpuDone| {
                done.values()
                    .map(|&t| s.finish_time(t))
                    .max()
                    .unwrap()
                    .as_secs_f64()
            };
            (finish(&big), finish(&small), s.makespan().as_secs_f64())
        };
        let (big_serial, small_serial, mk_serial) = run(false);
        let (big_chunked, small_chunked, mk_chunked) = run(true);
        // Serialised: the small collective waits out the big one's
        // whole transfer, finishing at ~T_big + T_small.
        assert!(small_serial > big_serial);
        // Chunked: the small collective slips between the big one's
        // chunks and finishes strictly (>25%) earlier.
        assert!(
            small_chunked < 0.75 * small_serial,
            "chunked small {small_chunked} vs serialised {small_serial}"
        );
        // Link work is conserved: the combined makespan stays put.
        assert!(
            (mk_chunked - mk_serial).abs() < 1e-6 * mk_serial.max(1e-9) + 1e-6,
            "makespan drifted: {mk_chunked} vs {mk_serial}"
        );
        let _ = big_chunked;
    }

    #[test]
    fn single_gpu_all_reduce_is_pure_overhead() {
        let costs = paper_costs();
        let t = run_all_reduce(1, 1 << 30, &costs);
        assert_eq!(t, costs.kernel_overhead);
    }

    #[test]
    fn ring_time_approaches_bandwidth_optimal() {
        let costs = zero_costs(1.0);
        // 8 GPUs, 100 MB, bottleneck 25 GB/s single lanes:
        // 2*(7/8)*100MB / 25GB/s = 7 ms.
        let t = run_all_reduce(8, 100_000_000, &costs);
        let secs = t.as_secs_f64();
        assert!((0.007..0.0078).contains(&secs), "got {secs}");
    }

    #[test]
    fn all_reduce_scales_gently_with_gpu_count() {
        // Ring AllReduce volume per link is 2(N-1)/N — nearly flat in N.
        let costs = zero_costs(1.0);
        let t2 = run_all_reduce(2, 200_000_000, &costs).as_secs_f64();
        let t8 = run_all_reduce(8, 200_000_000, &costs).as_secs_f64();
        // 2-GPU ring uses the 50 GB/s double link; 8-GPU bottlenecks at
        // 25 GB/s singles: expected ratio (7/4)/(1/2) * (25/50)... keep
        // loose: under 4x.
        assert!(t8 / t2 < 4.0, "t8/t2 = {}", t8 / t2);
    }

    #[test]
    fn broadcast_moves_half_the_all_reduce_volume() {
        let costs = zero_costs(1.0);
        let mut f = fixture(4);
        let ring = Ring::build(&f.topo, 4);
        let ar = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            80_000_000,
            &f.ready,
            &f.compute,
            &costs,
            &Selection::PAPER,
            "ar",
        )
        .unwrap();
        let bc = broadcast(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            80_000_000,
            &ar,
            &f.compute,
            &costs,
            &Selection::PAPER,
            "bc",
        )
        .unwrap();
        let s = Engine::new().run(&f.graph).unwrap();
        let t_ar = s.finish_time(ar[&Device::gpu(0)]).as_secs_f64();
        let t_bc = s.finish_time(bc[&Device::gpu(0)]).as_secs_f64() - t_ar;
        assert!(
            (t_ar / t_bc - 2.0).abs() < 0.3,
            "allreduce {t_ar}, broadcast {t_bc}"
        );
    }

    #[test]
    fn kernel_overhead_lands_on_compute_streams() {
        let costs = paper_costs();
        let mut f = fixture(2);
        let ring = Ring::build(&f.topo, 2);
        let _ = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            1 << 20,
            &f.ready,
            &f.compute,
            &costs,
            &Selection::PAPER,
            "ar",
        )
        .unwrap();
        let s = Engine::new().run(&f.graph).unwrap();
        for &res in f.compute.values() {
            assert_eq!(s.resource_stats(res).busy, costs.kernel_overhead);
        }
    }

    #[test]
    fn fallback_hops_use_store_and_forward_per_hop_pricing() {
        // Regression: the host-bounced ring fallback used to charge
        // `bottleneck_bandwidth.transfer_time(bytes * hop_count)` —
        // every hop at the *worst* link's speed. On a mixed-bandwidth
        // route (PCIe + QPI + PCIe) that overprices the QPI hop.
        let topo = voltascope_topo::pcie_only(2); // GPU0/cpu0, GPU1/cpu1
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        for g in 0..2u8 {
            let d = Device::gpu(g);
            compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
            ready.insert(d, graph.task(format!("bp@{d}")).category("bp").build());
        }
        let costs = zero_costs(1.0);
        let ring = Ring::build(&topo, 2);
        let bytes = 96_000_000u64; // per-link: 2*(n-1)/n * bytes = bytes
        let _ = all_reduce(
            &mut graph,
            &net,
            &topo,
            &ring,
            bytes,
            &ready,
            &compute,
            &costs,
            &Selection::PAPER,
            "ar",
        )
        .unwrap();
        let makespan = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
        // Store-and-forward sum: PCIe (12 GB/s) + QPI (19.2 GB/s) + PCIe.
        let b = bytes as f64;
        let per_hop_sum = b / 12e9 + b / 19.2e9 + b / 12e9;
        // The old formula priced all three hops at the 12 GB/s bottleneck.
        let old_formula = 3.0 * b / 12e9;
        assert!(
            (makespan - per_hop_sum).abs() < 1e-4,
            "makespan {makespan} != per-hop sum {per_hop_sum}"
        );
        assert!(
            (makespan - old_formula).abs() > 1e-3,
            "makespan {makespan} indistinguishable from the old bottleneck formula {old_formula}"
        );
    }

    #[test]
    fn concurrent_fallback_transfers_contend_on_shared_pcie_legs() {
        // Regression: host-bounced fallback hops used to occupy *no*
        // link resources (`direct_resource` is None for routed pairs),
        // so two simultaneous fallback transfers over the same PCIe leg
        // were priced as if the leg were dedicated. They must
        // serialise on each shared per-direction leg.
        let topo = voltascope_topo::pcie_only(2);
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        for g in 0..2u8 {
            let d = Device::gpu(g);
            compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
            ready.insert(d, graph.task(format!("bp@{d}")).category("bp").build());
        }
        let costs = zero_costs(1.0);
        let ring = Ring::build(&topo, 2);
        let bytes = 96_000_000u64; // per-link bytes = 2*(n-1)/n * bytes = bytes
        let a = all_reduce(
            &mut graph,
            &net,
            &topo,
            &ring,
            bytes,
            &ready,
            &compute,
            &costs,
            &Selection::PAPER,
            "ar1",
        )
        .unwrap();
        let _b = all_reduce(
            &mut graph,
            &net,
            &topo,
            &ring,
            bytes,
            &ready,
            &compute,
            &costs,
            &Selection::PAPER,
            "ar2",
        )
        .unwrap();
        assert_eq!(a.len(), 2);
        let makespan = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
        // One isolated transfer store-and-forwards PCIe (12 GB/s) + QPI
        // (19.2 GB/s) + PCIe: 8 + 5 + 8 = 21 ms. Both collectives cross
        // the same legs in the same direction, so the trailing PCIe leg
        // cannot finish its second 8 ms occupancy before ~29 ms.
        let b = bytes as f64;
        let per_hop_sum = b / 12e9 + b / 19.2e9 + b / 12e9;
        let contended = per_hop_sum + b / 12e9;
        assert!(
            makespan >= contended - 1e-3,
            "makespan {makespan} shows no contention (uncontended per-hop sum {per_hop_sum})"
        );
    }

    #[test]
    #[should_panic(expected = "no ready task")]
    fn missing_ready_task_panics() {
        let mut f = fixture(1);
        let ring = Ring::build(&f.topo, 2); // ring covers GPU1, fixture doesn't
        let costs = paper_costs();
        let _ = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            1,
            &f.ready,
            &f.compute,
            &costs,
            &Selection::PAPER,
            "ar",
        );
    }

    // ---- Arithmetic bugfix regressions (fail before the fix). ----

    #[test]
    fn per_link_bytes_survives_multi_gb_payloads() {
        // 8 ranks, AllReduce (passes = 2): the old u64 product
        // `2 * 7 * bytes` wraps for any payload above u64::MAX / 14
        // (~1.3 exabytes of *product*, reached at ~1.3 EB / 14 ≈ 92 GB
        // per rank on 64-bit... the point: the product overflows two
        // orders of magnitude before the per-link result does).
        let bytes = u64::MAX / 14 + 1;
        let wrapped = (2u64.wrapping_mul(7).wrapping_mul(bytes)) / 8;
        let correct = ring_per_link_bytes(2, 8, bytes).unwrap();
        // The old formula wrapped to a tiny nonsense value.
        assert!(wrapped < correct, "old {wrapped} vs fixed {correct}");
        let expect = (u128::from(bytes) * 14).div_ceil(8) as u64;
        assert_eq!(correct, expect);
    }

    #[test]
    fn per_link_bytes_rounds_up() {
        // Broadcast (passes = 1), 8 ranks, 9 bytes: 7*9/8 = 7.875.
        // Floor under-accounted to 7; a ring can never move a partial
        // byte, so the link must carry 8.
        assert_eq!(ring_per_link_bytes(1, 8, 9).unwrap(), 8);
        // Exact divisions stay exact.
        assert_eq!(ring_per_link_bytes(2, 8, 4).unwrap(), 14 * 4 / 8);
        // Minimal payload: 1 byte still crosses every link.
        assert_eq!(ring_per_link_bytes(2, 8, 1).unwrap(), 2);
    }

    #[test]
    fn per_link_bytes_reports_true_overflow() {
        // 8 ranks, AllReduce: per-link volume is 1.75x the payload, so
        // a near-u64::MAX payload is genuinely unrepresentable.
        let err = ring_per_link_bytes(2, 8, u64::MAX).unwrap_err();
        assert!(matches!(err, CommError::ArithmeticOverflow { .. }));
        assert!(err.to_string().contains("ring per-link bytes"));
    }

    #[test]
    fn effective_bytes_is_exact_above_2_pow_53() {
        // (2^53 + 1) as f64 rounds to 2^53: the old f64 round-trip
        // silently dropped the low bit even at efficiency 1.0.
        let bytes = (1u64 << 53) + 1;
        let eff = BandwidthEfficiency::new(1.0).unwrap();
        let old = (bytes as f64 / eff.as_f64()) as u64;
        assert_eq!(old, 1u64 << 53, "f64 loses the +1");
        assert_eq!(
            effective_wire_bytes(bytes, Protocol::Simple, eff).unwrap(),
            bytes
        );
    }

    #[test]
    fn effective_bytes_rounds_up_instead_of_truncating() {
        // 10 bytes at 85%: 10/0.85 = 11.76; the old cast truncated to
        // 11, under-charging the wire.
        let eff = BandwidthEfficiency::default();
        assert_eq!(effective_wire_bytes(10, Protocol::Simple, eff).unwrap(), 12);
    }

    #[test]
    fn effective_bytes_applies_the_wire_fraction() {
        let eff = BandwidthEfficiency::new(1.0).unwrap();
        // LL: 4 data bytes per 8-byte line -> 2x expansion.
        assert_eq!(
            effective_wire_bytes(1 << 20, Protocol::Ll, eff).unwrap(),
            2 << 20
        );
        // LL128: 120 data bytes per 128-byte line -> 16/15 expansion.
        assert_eq!(
            effective_wire_bytes(15 << 20, Protocol::Ll128, eff).unwrap(),
            16 << 20
        );
    }

    #[test]
    fn effective_bytes_reports_overflow() {
        let eff = BandwidthEfficiency::new(0.5).unwrap();
        assert!(matches!(
            effective_wire_bytes(u64::MAX, Protocol::Ll, eff),
            Err(CommError::ArithmeticOverflow { .. })
        ));
    }

    // ---- Protocol and channel axes. ----

    #[test]
    fn ll_wins_small_messages_simple_wins_large() {
        let costs = paper_costs();
        let sel = |protocol| Selection {
            protocol,
            ..Selection::PAPER
        };
        let run = |bytes: u64, s: &Selection| {
            let mut f = fixture(8);
            let ring = Ring::build(&f.topo, 8);
            all_reduce(
                &mut f.graph,
                &f.net,
                &f.topo,
                &ring,
                bytes,
                &f.ready,
                &f.compute,
                &costs,
                s,
                "ar",
            )
            .unwrap();
            Engine::new().run(&f.graph).unwrap().makespan()
        };
        let small = 4 << 10;
        let large = 256 << 20;
        assert!(
            run(small, &sel(Protocol::Ll)) < run(small, &sel(Protocol::Simple)),
            "LL must win 4 KB messages"
        );
        assert!(
            run(large, &sel(Protocol::Simple)) < run(large, &sel(Protocol::Ll)),
            "Simple must win 256 MB messages"
        );
    }

    #[test]
    fn extra_channels_lift_the_ll_rate_cap() {
        // A single LL channel is capped at 5 GB/s; four channels split
        // the payload and overlap their capped serialisation.
        let costs = paper_costs();
        let run = |channels: u32| {
            let mut f = fixture(8);
            let ring = Ring::build(&f.topo, 8);
            let sel = Selection {
                protocol: Protocol::Ll,
                channels,
                ..Selection::PAPER
            };
            all_reduce(
                &mut f.graph,
                &f.net,
                &f.topo,
                &ring,
                16 << 20,
                &f.ready,
                &f.compute,
                &costs,
                &sel,
                "ar",
            )
            .unwrap();
            Engine::new().run(&f.graph).unwrap().makespan()
        };
        assert!(
            run(4) < run(1),
            "4 LL channels should beat 1 on a 16 MB payload"
        );
    }

    #[test]
    fn multi_channel_emission_is_deadlock_free_and_labelled() {
        let costs = paper_costs();
        let mut f = fixture(4);
        let ring = Ring::build(&f.topo, 4);
        let sel = Selection {
            channels: 2,
            ..Selection::PAPER
        };
        let done = all_reduce(
            &mut f.graph,
            &f.net,
            &f.topo,
            &ring,
            1 << 20,
            &f.ready,
            &f.compute,
            &costs,
            &sel,
            "ar",
        )
        .unwrap();
        assert_eq!(done.len(), 4);
        let s = Engine::new().run(&f.graph).unwrap();
        assert!(!s.makespan().is_zero());
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;
    use voltascope_sim::Engine;
    use voltascope_topo::dgx1_v100;

    fn paper_costs() -> NcclCosts {
        NcclCosts {
            tuning: TuningSpace::paper(),
            ..NcclCosts::default()
        }
    }

    fn fixture(
        gpus: usize,
    ) -> (
        Topology,
        TaskGraph,
        LinkNetwork,
        BTreeMap<Device, ResourceId>,
        PerGpuDone,
        Vec<Device>,
    ) {
        let topo = dgx1_v100();
        let mut graph = TaskGraph::new();
        let net = LinkNetwork::register(&mut graph, &topo);
        let mut compute = BTreeMap::new();
        let mut ready = BTreeMap::new();
        let mut devs = Vec::new();
        for g in 0..gpus {
            let d = Device::gpu(g as u8);
            devs.push(d);
            compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
            let t = graph.task(format!("bp@{d}")).category("bp").build();
            ready.insert(d, t);
        }
        (topo, graph, net, compute, ready, devs)
    }

    #[test]
    fn tree_all_reduce_completes_for_all_gpu_counts() {
        for gpus in [1usize, 2, 4, 8] {
            let (topo, mut graph, net, compute, ready, devs) = fixture(gpus);
            let done = tree_all_reduce(
                &mut graph,
                &net,
                &topo,
                &devs,
                1 << 20,
                &ready,
                &compute,
                &paper_costs(),
                &Selection::PAPER,
                "tar",
            )
            .unwrap();
            assert_eq!(done.len(), gpus);
            let s = Engine::new().run(&graph).unwrap();
            assert!(!s.makespan().is_zero());
        }
    }

    #[test]
    fn a_solo_chunked_tree_matches_the_whole_transfer_emission() {
        let run = |chunking: bool| {
            let mut costs = paper_costs();
            costs.chunking = chunking;
            let (topo, mut graph, net, compute, ready, devs) = fixture(8);
            let _ = tree_all_reduce(
                &mut graph,
                &net,
                &topo,
                &devs,
                16 << 20,
                &ready,
                &compute,
                &costs,
                &Selection::PAPER,
                "tar",
            )
            .unwrap();
            Engine::new().run(&graph).unwrap().makespan()
        };
        let whole = run(false);
        let chunked = run(true);
        let diff = (chunked.as_secs_f64() - whole.as_secs_f64()).abs();
        assert!(diff < 1e-6, "chunked {chunked} vs whole {whole}");
    }

    #[test]
    fn tree_beats_ring_on_latency_bound_small_messages() {
        // Tiny buckets: ring pays 2(N-1) chunk steps, tree 2 log2 N.
        let costs = paper_costs();
        let small = 4 * 1024u64;

        let (topo, mut g1, net1, c1, r1, devs) = fixture(8);
        let ring = Ring::build(&topo, 8);
        let _ = all_reduce(
            &mut g1,
            &net1,
            &topo,
            &ring,
            small,
            &r1,
            &c1,
            &costs,
            &Selection::PAPER,
            "ring",
        )
        .unwrap();
        let t_ring = Engine::new().run(&g1).unwrap().makespan();

        let (topo2, mut g2, net2, c2, r2, devs2) = fixture(8);
        let _ = tree_all_reduce(
            &mut g2,
            &net2,
            &topo2,
            &devs2,
            small,
            &r2,
            &c2,
            &costs,
            &Selection::PAPER,
            "tree",
        )
        .unwrap();
        let t_tree = Engine::new().run(&g2).unwrap().makespan();

        assert!(
            t_tree < t_ring,
            "tree {t_tree} should beat ring {t_ring} on small messages"
        );
        let _ = devs;
    }

    #[test]
    fn ring_beats_tree_on_bandwidth_bound_large_messages() {
        // Large buckets: the tree root's links carry multiple children's
        // full payloads; the ring splits the load across all links.
        let costs = paper_costs();
        let big = 200_000_000u64;

        let (topo, mut g1, net1, c1, r1, _devs) = fixture(8);
        let ring = Ring::build(&topo, 8);
        let _ = all_reduce(
            &mut g1,
            &net1,
            &topo,
            &ring,
            big,
            &r1,
            &c1,
            &costs,
            &Selection::PAPER,
            "ring",
        )
        .unwrap();
        let t_ring = Engine::new().run(&g1).unwrap().makespan();

        let (topo2, mut g2, net2, c2, r2, devs2) = fixture(8);
        let _ = tree_all_reduce(
            &mut g2,
            &net2,
            &topo2,
            &devs2,
            big,
            &r2,
            &c2,
            &costs,
            &Selection::PAPER,
            "tree",
        )
        .unwrap();
        let t_tree = Engine::new().run(&g2).unwrap().makespan();

        assert!(
            t_ring < t_tree,
            "ring {t_ring} should beat tree {t_tree} on large messages"
        );
    }

    #[test]
    fn all_reduce_dispatches_to_the_tree_algorithm() {
        // all_reduce with a tree selection must equal a direct
        // tree_all_reduce over the ring's rank order.
        let costs = paper_costs();
        let sel = Selection {
            algorithm: Algorithm::Tree,
            ..Selection::PAPER
        };
        let (topo, mut g1, net1, c1, r1, _devs) = fixture(8);
        let ring = Ring::build(&topo, 8);
        let _ = all_reduce(
            &mut g1,
            &net1,
            &topo,
            &ring,
            1 << 20,
            &r1,
            &c1,
            &costs,
            &sel,
            "t",
        )
        .unwrap();
        let via_dispatch = Engine::new().run(&g1).unwrap().makespan();

        let (topo2, mut g2, net2, c2, r2, _devs2) = fixture(8);
        let ring2 = Ring::build(&topo2, 8);
        let _ = tree_all_reduce(
            &mut g2,
            &net2,
            &topo2,
            ring2.devices(),
            1 << 20,
            &r2,
            &c2,
            &costs,
            &sel,
            "t",
        )
        .unwrap();
        let direct = Engine::new().run(&g2).unwrap().makespan();
        assert_eq!(via_dispatch, direct);
    }
}
