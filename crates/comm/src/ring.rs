//! Topology-aware ring construction for NCCL-style collectives.

use voltascope_topo::{Device, Topology};

/// A communication ring over a set of GPUs, as NCCL builds from the
/// NVLink topology: a cyclic order in which every consecutive pair has
/// a direct NVLink connection whenever the wiring permits one.
///
/// On the paper's DGX-1, a full 8-GPU NVLink ring exists, which is why
/// NCCL sustains high bandwidth where P2P's parameter-server pattern
/// bottlenecks on GPU0's links (§V-A).
///
/// # Example
///
/// ```
/// use voltascope_comm::Ring;
/// use voltascope_topo::dgx1_v100;
///
/// let topo = dgx1_v100();
/// let ring = Ring::build(&topo, 8);
/// assert_eq!(ring.len(), 8);
/// assert!(ring.all_nvlink(&topo));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    order: Vec<Device>,
}

impl Ring {
    /// Builds a ring over the first `gpu_count` GPUs of `topo`,
    /// preferring orders where every hop is a direct NVLink (found by
    /// bounded exhaustive search) and, among those, maximising the
    /// minimum hop bandwidth. Falls back to index order when no NVLink
    /// Hamiltonian cycle exists (e.g. PCIe-only boxes).
    ///
    /// The cycle search is a DFS that is exponential in the worst case
    /// — degraded graphs explore many dead-end branches, and dense
    /// (NVSwitch-like) graphs have `(n-1)!` Hamiltonian cycles — so it
    /// is capped at [`Ring::SEARCH_NODE_BUDGET`] expanded path nodes.
    /// When the budget runs out the best cycle found so far wins (the
    /// expansion order is deterministic, so the truncated result is
    /// too), with the same index-order fallback when none was found.
    /// The paper's 8-GPU graphs stay orders of magnitude below the
    /// bound, so results there are exhaustively optimal.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or exceeds the topology's GPUs.
    pub fn build(topo: &Topology, gpu_count: usize) -> Self {
        assert!(gpu_count > 0, "ring needs at least one GPU");
        let gpus = topo.gpus();
        assert!(
            gpu_count <= gpus.len(),
            "requested {gpu_count} GPUs from a {}-GPU topology",
            gpus.len()
        );
        let gpus = &gpus[..gpu_count];
        if gpu_count <= 2 {
            return Ring {
                order: gpus.to_vec(),
            };
        }

        // Bounded DFS over Hamiltonian cycles rooted at gpus[0].
        let mut best: Option<(f64, Vec<Device>)> = None;
        let mut path = vec![gpus[0]];
        let mut used = vec![false; gpu_count];
        used[0] = true;
        let mut budget = Self::SEARCH_NODE_BUDGET;
        search(topo, gpus, &mut path, &mut used, &mut best, &mut budget);

        match best {
            Some((_, order)) => Ring { order },
            None => Ring {
                order: gpus.to_vec(),
            },
        }
    }

    /// Node budget of the Hamiltonian-cycle DFS: the search stops
    /// after expanding this many path nodes and keeps the best cycle
    /// seen. An 8-GPU complete graph expands ~14k nodes, so every
    /// paper-scale topology is searched exhaustively; the budget only
    /// engages on larger dense graphs (12-GPU NVSwitch: `11!` ≈ 40M
    /// cycles) where the exact optimum is unaffordable and any
    /// all-NVLink cycle is equivalent anyway.
    pub const SEARCH_NODE_BUDGET: usize = 250_000;

    /// The devices in ring order.
    pub fn devices(&self) -> &[Device] {
        &self.order
    }

    /// Ring size.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for an empty ring (never produced by [`Ring::build`]).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Consecutive `(from, to)` pairs including the closing hop. A
    /// 1-GPU ring has no hops.
    pub fn hops(&self) -> Vec<(Device, Device)> {
        if self.order.len() < 2 {
            return Vec::new();
        }
        (0..self.order.len())
            .map(|i| (self.order[i], self.order[(i + 1) % self.order.len()]))
            .collect()
    }

    /// `true` when every hop is a direct NVLink connection.
    pub fn all_nvlink(&self, topo: &Topology) -> bool {
        self.hops().iter().all(|&(a, b)| topo.p2p_capable(a, b))
    }

    /// The lowest direct-link bandwidth along the ring in bytes/s;
    /// hops without a direct link are scored at the bottleneck of
    /// their hardware route.
    pub fn bottleneck_bytes_per_sec(&self, topo: &Topology) -> f64 {
        self.hops()
            .iter()
            .map(|&(a, b)| hop_bandwidth(topo, a, b))
            .fold(f64::INFINITY, f64::min)
    }
}

fn hop_bandwidth(topo: &Topology, a: Device, b: Device) -> f64 {
    match topo.direct_link(a, b) {
        Some(l) => l.bandwidth.as_bytes_per_sec(),
        None => topo
            .route(a, b)
            .bottleneck_bandwidth()
            .map(|bw| bw.as_bytes_per_sec())
            .unwrap_or(f64::INFINITY),
    }
}

fn search(
    topo: &Topology,
    gpus: &[Device],
    path: &mut Vec<Device>,
    used: &mut Vec<bool>,
    best: &mut Option<(f64, Vec<Device>)>,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    if path.len() == gpus.len() {
        let last = *path.last().expect("non-empty path");
        if topo.p2p_capable(last, gpus[0]) {
            let ring = Ring {
                order: path.clone(),
            };
            let score = ring.bottleneck_bytes_per_sec(topo);
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                *best = Some((score, path.clone()));
            }
        }
        return;
    }
    let last = *path.last().expect("non-empty path");
    for (i, &g) in gpus.iter().enumerate() {
        if used[i] || !topo.p2p_capable(last, g) {
            continue;
        }
        used[i] = true;
        path.push(g);
        search(topo, gpus, path, used, best, budget);
        path.pop();
        used[i] = false;
        if *budget == 0 {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_topo::{dgx1_v100, pcie_only};

    #[test]
    fn dgx1_rings_are_pure_nvlink_for_all_gpu_counts() {
        let topo = dgx1_v100();
        for n in [2usize, 4, 8] {
            let ring = Ring::build(&topo, n);
            assert_eq!(ring.len(), n);
            assert!(ring.all_nvlink(&topo), "no NVLink ring for {n} GPUs");
        }
    }

    #[test]
    fn ring_hops_close_the_cycle() {
        let topo = dgx1_v100();
        let ring = Ring::build(&topo, 4);
        let hops = ring.hops();
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0].0, hops[3].1);
        // Each device appears exactly once as a source.
        let mut sources: Vec<Device> = hops.iter().map(|h| h.0).collect();
        sources.sort();
        sources.dedup();
        assert_eq!(sources.len(), 4);
    }

    #[test]
    fn single_gpu_ring_has_no_hops() {
        let topo = dgx1_v100();
        let ring = Ring::build(&topo, 1);
        assert!(ring.hops().is_empty());
        assert!(!ring.is_empty());
    }

    #[test]
    fn two_gpu_ring_hops_both_ways() {
        let topo = dgx1_v100();
        let ring = Ring::build(&topo, 2);
        let hops = ring.hops();
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0], (Device::gpu(0), Device::gpu(1)));
        assert_eq!(hops[1], (Device::gpu(1), Device::gpu(0)));
    }

    #[test]
    fn pcie_fallback_is_index_order() {
        let topo = pcie_only(4);
        let ring = Ring::build(&topo, 4);
        assert!(!ring.all_nvlink(&topo));
        assert_eq!(
            ring.devices(),
            &[
                Device::gpu(0),
                Device::gpu(1),
                Device::gpu(2),
                Device::gpu(3)
            ]
        );
        assert!(ring.bottleneck_bytes_per_sec(&topo) < 20e9);
    }

    #[test]
    fn bottleneck_reflects_single_lane_hops() {
        let topo = dgx1_v100();
        let ring8 = Ring::build(&topo, 8);
        // An 8-GPU NVLink ring must traverse some single-lane links.
        assert_eq!(ring8.bottleneck_bytes_per_sec(&topo), 25e9);
        // The 2-GPU "ring" uses the double link both ways.
        let ring2 = Ring::build(&topo, 2);
        assert_eq!(ring2.bottleneck_bytes_per_sec(&topo), 50e9);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = Ring::build(&dgx1_v100(), 0);
    }

    #[test]
    fn dense_graph_search_is_budget_bounded_and_deterministic() {
        // A 12-GPU all-to-all switch has 11! ≈ 40M Hamiltonian cycles;
        // the unbounded DFS would grind through all of them. The budget
        // must cut the search off while still returning a valid
        // all-NVLink cycle (in a uniform complete graph every cycle has
        // the same bottleneck, so a truncated search loses nothing).
        let topo = voltascope_topo::full_nvlink_switch(12);
        let start = std::time::Instant::now();
        let ring = Ring::build(&topo, 12);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "budget failed to bound the dense-graph search"
        );
        assert_eq!(ring.len(), 12);
        assert!(ring.all_nvlink(&topo));
        // Deterministic: the truncated search expands nodes in a fixed
        // order, so repeated builds agree exactly.
        assert_eq!(ring, Ring::build(&topo, 12));
    }

    #[test]
    fn degraded_graph_ring_stays_optimal_within_budget() {
        // Paper-scale degraded graphs stay far below the node budget,
        // so the bounded search still finds the exhaustive optimum: an
        // all-NVLink 8-GPU ring survives any single dead cable.
        let topo = dgx1_v100().apply(&voltascope_topo::FaultSpec::new().kill_link(
            voltascope_topo::Device::gpu(3),
            voltascope_topo::Device::gpu(5),
        ));
        let ring = Ring::build(&topo, 8);
        assert!(ring.all_nvlink(&topo));
        assert_eq!(ring.bottleneck_bytes_per_sec(&topo), 25e9);
    }
}
