//! Buffer-level collectives: the *semantics* of each communication
//! primitive, independent of timing.
//!
//! These run on plain `f32` slices (one per rank) and are used by
//! `voltascope-train` to move real gradients and weights between
//! simulated GPU replicas, so the whole data-parallel pipeline is
//! numerically testable: an N-GPU training step must produce the same
//! weights as a single-GPU step on the concatenated batch.

/// Sums every rank's buffer into rank `root` (the first half of
/// MXNet's parameter-server weight update).
///
/// # Panics
///
/// Panics if buffers have unequal lengths, `root` is out of range, or
/// there are no ranks.
pub fn reduce_to_root(buffers: &mut [Vec<f32>], root: usize) {
    check(buffers);
    assert!(root < buffers.len(), "root {root} out of range");
    for rank in 0..buffers.len() {
        if rank == root {
            continue;
        }
        let (a, b) = two_mut(buffers, root, rank);
        for (dst, src) in a.iter_mut().zip(b.iter()) {
            *dst += *src;
        }
    }
}

/// Copies rank `root`'s buffer to every other rank (NCCL `Broadcast`,
/// or the parameter server pushing updated weights).
///
/// # Panics
///
/// Panics if buffers have unequal lengths or `root` is out of range.
pub fn broadcast(buffers: &mut [Vec<f32>], root: usize) {
    check(buffers);
    assert!(root < buffers.len(), "root {root} out of range");
    let src = buffers[root].clone();
    for (rank, buf) in buffers.iter_mut().enumerate() {
        if rank != root {
            buf.copy_from_slice(&src);
        }
    }
}

/// Ring AllReduce (NCCL's algorithm): reduce-scatter around the ring,
/// then all-gather, leaving every rank with the elementwise sum.
///
/// The chunking follows the ring structure exactly — rank `r` owns
/// chunk `r` after the reduce-scatter phase — so the test suite can
/// validate intermediate states, not just the final sum.
///
/// # Panics
///
/// Panics if buffers have unequal lengths or there are no ranks.
///
/// # Example
///
/// ```
/// let mut bufs = vec![vec![1.0f32; 5]; 4];
/// voltascope_comm::semantic::ring_all_reduce(&mut bufs);
/// assert!(bufs.iter().all(|b| b.iter().all(|&v| v == 4.0)));
/// ```
pub fn ring_all_reduce(buffers: &mut [Vec<f32>]) {
    check(buffers);
    let n = buffers.len();
    if n == 1 {
        return;
    }
    let len = buffers[0].len();
    let bounds: Vec<(usize, usize)> = (0..n)
        .map(|c| {
            let start = c * len / n;
            let end = (c + 1) * len / n;
            (start, end)
        })
        .collect();

    // Reduce-scatter: in step s, rank r sends chunk (r - s) to r + 1.
    for step in 0..n - 1 {
        for rank in 0..n {
            let next = (rank + 1) % n;
            let chunk = (rank + n - step) % n;
            let (start, end) = bounds[chunk];
            let (dst, src) = two_mut(buffers, next, rank);
            for i in start..end {
                dst[i] += src[i];
            }
        }
    }
    // All-gather: in step s, rank r sends its completed chunk (r+1-s).
    for step in 0..n - 1 {
        for rank in 0..n {
            let next = (rank + 1) % n;
            let chunk = (rank + 1 + n - step) % n;
            let (start, end) = bounds[chunk];
            let (dst, src) = two_mut(buffers, next, rank);
            dst[start..end].copy_from_slice(&src[start..end]);
        }
    }
}

/// AllReduce followed by averaging: what synchronous SGD actually needs
/// (gradients averaged over `buffers.len()` replicas).
///
/// # Panics
///
/// Panics if buffers have unequal lengths or there are no ranks.
pub fn all_reduce_average(buffers: &mut [Vec<f32>]) {
    let n = buffers.len() as f32;
    ring_all_reduce(buffers);
    for buf in buffers.iter_mut() {
        for v in buf.iter_mut() {
            *v /= n;
        }
    }
}

/// Reduce-scatter: after the call, rank `r` holds the complete
/// elementwise sum of chunk `(r + 1) mod n` (chunk boundaries as in
/// [`ring_all_reduce`]); the other regions of each buffer hold partial
/// sums. Returns the per-rank chunk bounds.
///
/// # Panics
///
/// Panics if buffers have unequal lengths or there are no ranks.
pub fn reduce_scatter(buffers: &mut [Vec<f32>]) -> Vec<(usize, usize)> {
    check(buffers);
    let n = buffers.len();
    let len = buffers[0].len();
    let bounds: Vec<(usize, usize)> = (0..n).map(|c| (c * len / n, (c + 1) * len / n)).collect();
    if n == 1 {
        return bounds;
    }
    for step in 0..n - 1 {
        for rank in 0..n {
            let next = (rank + 1) % n;
            let chunk = (rank + n - step) % n;
            let (start, end) = bounds[chunk];
            let (dst, src) = two_mut(buffers, next, rank);
            for i in start..end {
                dst[i] += src[i];
            }
        }
    }
    bounds
}

/// All-gather: every rank's own chunk (per the [`reduce_scatter`]
/// bounds) is replicated to all ranks; rank `r` is the authoritative
/// source for chunk `r + 1 mod n` after a reduce-scatter, but this
/// standalone version gathers each rank's chunk `r`.
///
/// # Panics
///
/// Panics if buffers have unequal lengths or there are no ranks.
pub fn all_gather(buffers: &mut [Vec<f32>]) {
    check(buffers);
    let n = buffers.len();
    let len = buffers[0].len();
    for owner in 0..n {
        let start = owner * len / n;
        let end = (owner + 1) * len / n;
        let chunk = buffers[owner][start..end].to_vec();
        for (rank, buf) in buffers.iter_mut().enumerate() {
            if rank != owner {
                buf[start..end].copy_from_slice(&chunk);
            }
        }
    }
}

/// Recursive halving-doubling AllReduce — the other classic
/// bandwidth-optimal algorithm (used by MPI implementations and NCCL's
/// tree modes). Requires a power-of-two rank count; produces exactly
/// the same result as [`ring_all_reduce`] (property-tested).
///
/// # Panics
///
/// Panics if the rank count is not a power of two, buffers have
/// unequal lengths, or there are no ranks.
pub fn halving_doubling_all_reduce(buffers: &mut [Vec<f32>]) {
    check(buffers);
    let n = buffers.len();
    assert!(n.is_power_of_two(), "halving-doubling needs 2^k ranks");
    if n == 1 {
        return;
    }
    // Recursive distance doubling with full-buffer exchange (the
    // allreduce variant without scatter; O(log n) rounds).
    let len = buffers[0].len();
    let mut distance = 1;
    while distance < n {
        // Pairwise exchange-and-sum at the current distance.
        let snapshot: Vec<Vec<f32>> = buffers.to_vec();
        for (rank, dst) in buffers.iter_mut().enumerate() {
            let src = &snapshot[rank ^ distance];
            for (d, s) in dst.iter_mut().zip(src.iter().take(len)) {
                *d += s;
            }
        }
        distance *= 2;
    }
}

fn check(buffers: &[Vec<f32>]) {
    assert!(!buffers.is_empty(), "collective needs at least one rank");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "collective buffers must have equal length"
    );
}

/// Disjoint mutable borrows of two ranks' buffers.
fn two_mut(buffers: &mut [Vec<f32>], a: usize, b: usize) -> (&mut Vec<f32>, &Vec<f32>) {
    assert_ne!(a, b);
    if a < b {
        let (left, right) = buffers.split_at_mut(b);
        (&mut left[a], &right[0])
    } else {
        let (left, right) = buffers.split_at_mut(a);
        (&mut right[0], &left[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn make(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| (0..len).map(|i| (r * len + i) as f32).collect())
            .collect()
    }

    #[test]
    fn reduce_to_root_sums_into_root_only() {
        let mut bufs = make(3, 4);
        let before_rank1 = bufs[1].clone();
        reduce_to_root(&mut bufs, 0);
        assert_eq!(bufs[0], vec![12.0, 15.0, 18.0, 21.0]);
        assert_eq!(bufs[1], before_rank1, "non-root buffers unchanged");
    }

    #[test]
    fn broadcast_replicates_root() {
        let mut bufs = make(4, 3);
        broadcast(&mut bufs, 2);
        for b in &bufs {
            assert_eq!(*b, vec![6.0, 7.0, 8.0]);
        }
    }

    #[test]
    fn ring_all_reduce_matches_naive_sum() {
        for n in 1..=8 {
            for len in [1usize, 2, 7, 16, 33] {
                let mut bufs = make(n, len);
                let expect: Vec<f32> = (0..len)
                    .map(|i| (0..n).map(|r| (r * len + i) as f32).sum())
                    .collect();
                ring_all_reduce(&mut bufs);
                for (rank, b) in bufs.iter().enumerate() {
                    assert_eq!(*b, expect, "n={n} len={len} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn all_reduce_average_divides_by_ranks() {
        let mut bufs = vec![vec![2.0, 4.0], vec![6.0, 8.0]];
        all_reduce_average(&mut bufs);
        assert_eq!(bufs[0], vec![4.0, 6.0]);
        assert_eq!(bufs[1], vec![4.0, 6.0]);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let mut bufs = vec![vec![1.0, 2.0, 3.0]];
        ring_all_reduce(&mut bufs);
        assert_eq!(bufs[0], vec![1.0, 2.0, 3.0]);
        reduce_to_root(&mut bufs, 0);
        broadcast(&mut bufs, 0);
        assert_eq!(bufs[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_buffers_panic() {
        let mut bufs = vec![vec![1.0], vec![1.0, 2.0]];
        ring_all_reduce(&mut bufs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let mut bufs = vec![vec![1.0]];
        broadcast(&mut bufs, 3);
    }

    #[test]
    fn reduce_scatter_owns_summed_chunks() {
        let mut bufs = make(4, 8);
        let bounds = reduce_scatter(&mut bufs);
        assert_eq!(bounds, vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        // After the ring reduce-scatter, chunk c is completed at the
        // rank that receives it last: rank (c - 1) mod n. Equivalently,
        // rank r owns chunk (r + 1) mod n.
        for (owner, buf) in bufs.iter().enumerate() {
            let chunk = (owner + 1) % 4;
            let (s, e) = bounds[chunk];
            for (i, &got) in buf.iter().enumerate().take(e).skip(s) {
                let want: f32 = (0..4).map(|r| (r * 8 + i) as f32).sum();
                assert_eq!(got, want, "owner {owner} chunk {chunk} idx {i}");
            }
        }
    }

    #[test]
    fn all_gather_replicates_owned_chunks() {
        let mut bufs = make(4, 8);
        let expected: Vec<f32> = (0..8)
            .map(|i| {
                let owner = i / 2;
                (owner * 8 + i) as f32
            })
            .collect();
        all_gather(&mut bufs);
        for b in &bufs {
            assert_eq!(*b, expected);
        }
    }

    #[test]
    fn halving_doubling_matches_ring() {
        for n in [1usize, 2, 4, 8] {
            let mut a = make(n, 12);
            let mut b = make(n, 12);
            ring_all_reduce(&mut a);
            halving_doubling_all_reduce(&mut b);
            for (x, y) in a.iter().zip(&b) {
                for (u, v) in x.iter().zip(y) {
                    assert!((u - v).abs() < 1e-3, "{u} vs {v} at n={n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k ranks")]
    fn halving_doubling_rejects_odd_ranks() {
        let mut bufs = make(3, 4);
        halving_doubling_all_reduce(&mut bufs);
    }

    proptest! {
        /// AllReduce equals the naive per-element sum for random data.
        #[test]
        fn all_reduce_equals_sum(
            n in 1usize..8,
            len in 1usize..40,
            seed in 0u64..1000,
        ) {
            let mut bufs: Vec<Vec<f32>> = (0..n)
                .map(|r| {
                    (0..len)
                        .map(|i| {
                            let x = seed
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add((r * len + i) as u64);
                            ((x >> 40) % 1000) as f32 / 100.0 - 5.0
                        })
                        .collect()
                })
                .collect();
            let expect: Vec<f32> = (0..len)
                .map(|i| (0..n).map(|r| bufs[r][i]).sum())
                .collect();
            ring_all_reduce(&mut bufs);
            for b in &bufs {
                for (got, want) in b.iter().zip(&expect) {
                    prop_assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
                }
            }
        }

        /// reduce_to_root + broadcast is equivalent to all_reduce.
        #[test]
        fn ps_schedule_equals_all_reduce(n in 2usize..8, len in 1usize..30) {
            let mut a: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..len).map(|i| ((r + 1) * (i + 1)) as f32).collect())
                .collect();
            let mut b = a.clone();
            ring_all_reduce(&mut a);
            reduce_to_root(&mut b, 0);
            broadcast(&mut b, 0);
            for (x, y) in a.iter().zip(&b) {
                for (u, v) in x.iter().zip(y) {
                    prop_assert!((u - v).abs() < 1e-3 * u.abs().max(1.0));
                }
            }
        }
    }
}
