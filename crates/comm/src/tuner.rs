//! Cost-based auto-tuning over the (algorithm, protocol, channels)
//! space, the way real NCCL's internal tuner works: predict the cost
//! of every candidate for the given message size and topology, pick
//! the cheapest.
//!
//! Prediction *is* simulation — each candidate's task graph is emitted
//! in isolation and run through the discrete-event engine, so the
//! predicted cost is exactly the cost the chosen selection will incur
//! in the real emission. (That makes "the chosen candidate is never
//! beaten by an unchosen one" true by construction; the offline
//! property suite pins it against regressions.) Degraded topologies
//! renegotiate naturally: the candidate graphs are built on the
//! faulted topology, over a [`Ring`] that already routed around dead
//! links, so a dead NVLink interface can flip the winner.
//!
//! A singleton tuning space ([`TuningSpace::paper`]) short-circuits
//! without simulating anything — the calibrated default adds zero
//! work and reproduces the pre-tuner graphs byte-for-byte.

use std::collections::BTreeMap;

use voltascope_sim::{Engine, SimSpan, TaskGraph};
use voltascope_topo::Topology;

use crate::collective::{self, NcclCosts, PerGpuDone};
use crate::network::LinkNetwork;
use crate::protocol::{Algorithm, CommError, Selection};
use crate::ring::Ring;

/// Which collective a prediction prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    AllReduce,
    Broadcast,
}

/// Predicted makespan of one AllReduce candidate on `topo`, from a
/// cold start (all ranks ready at t = 0).
///
/// # Errors
///
/// Propagates [`CommError::ArithmeticOverflow`] from the emission.
pub fn predict_all_reduce(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &NcclCosts,
    sel: &Selection,
) -> Result<SimSpan, CommError> {
    predict(topo, ring, bytes, costs, sel, Op::AllReduce)
}

/// Predicted makespan of one Broadcast candidate on `topo`.
///
/// # Errors
///
/// Propagates [`CommError::ArithmeticOverflow`] from the emission.
pub fn predict_broadcast(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &NcclCosts,
    sel: &Selection,
) -> Result<SimSpan, CommError> {
    predict(topo, ring, bytes, costs, sel, Op::Broadcast)
}

fn predict(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &NcclCosts,
    sel: &Selection,
    op: Op,
) -> Result<SimSpan, CommError> {
    let mut graph = TaskGraph::new();
    let net = LinkNetwork::register(&mut graph, topo);
    let mut compute = BTreeMap::new();
    let mut ready: PerGpuDone = BTreeMap::new();
    for &d in ring.devices() {
        compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
        ready.insert(d, graph.task(format!("ready@{d}")).build());
    }
    match op {
        Op::AllReduce => collective::all_reduce(
            &mut graph, &net, topo, ring, bytes, &ready, &compute, costs, sel, "tune",
        )?,
        Op::Broadcast => collective::broadcast(
            &mut graph, &net, topo, ring, bytes, &ready, &compute, costs, sel, "tune",
        )?,
    };
    Ok(Engine::new()
        .run(&graph)
        .expect("tuner candidate graph must not deadlock")
        .makespan())
}

/// Picks the cheapest (algorithm, protocol, channels) for an AllReduce
/// of `bytes` from `costs.tuning`, by simulating every candidate on
/// `topo`/`ring`. Ties keep the earliest candidate in
/// [`crate::TuningSpace::candidates`] order, so selection is
/// deterministic.
///
/// # Errors
///
/// Propagates [`CommError::ArithmeticOverflow`] from a candidate
/// emission.
///
/// # Panics
///
/// Panics if the tuning space is empty.
pub fn choose_all_reduce(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &NcclCosts,
) -> Result<Selection, CommError> {
    choose(topo, ring, bytes, costs, Op::AllReduce)
}

/// Picks the cheapest (protocol, channels) ring Broadcast of `bytes`.
/// Broadcast is always ring-shaped, so the tuning space's algorithm
/// axis collapses to [`Algorithm::Ring`].
///
/// # Errors
///
/// Propagates [`CommError::ArithmeticOverflow`] from a candidate
/// emission.
///
/// # Panics
///
/// Panics if the tuning space is empty.
pub fn choose_broadcast(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &NcclCosts,
) -> Result<Selection, CommError> {
    choose(topo, ring, bytes, costs, Op::Broadcast)
}

fn choose(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &NcclCosts,
    op: Op,
) -> Result<Selection, CommError> {
    // Broadcast collapses the algorithm axis: a tree broadcast
    // candidate would emit the same ring graph as its ring twin, so
    // only protocol x channels is searched.
    let candidates: Vec<Selection> = match op {
        Op::AllReduce => costs.tuning.candidates().collect(),
        Op::Broadcast => costs
            .tuning
            .protocols
            .iter()
            .flat_map(|&protocol| {
                costs
                    .tuning
                    .channels
                    .iter()
                    .filter(|&&c| c >= 1)
                    .map(move |&channels| Selection {
                        algorithm: Algorithm::Ring,
                        protocol,
                        channels,
                    })
            })
            .collect(),
    };
    assert!(!candidates.is_empty(), "empty NCCL tuning space");
    // The calibrated singleton (and any env-pinned single choice)
    // skips simulation entirely.
    if candidates.len() == 1 {
        return Ok(candidates[0]);
    }
    let mut best = candidates[0];
    let mut best_cost = predict(topo, ring, bytes, costs, &best, op)?;
    for sel in &candidates[1..] {
        let cost = predict(topo, ring, bytes, costs, sel, op)?;
        if cost < best_cost {
            best = *sel;
            best_cost = cost;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Protocol, TuningSpace};
    use voltascope_topo::dgx1_v100;

    fn modern_costs() -> NcclCosts {
        NcclCosts {
            tuning: TuningSpace::modern(),
            ..NcclCosts::default()
        }
    }

    #[test]
    fn paper_space_short_circuits_to_the_calibrated_choice() {
        let topo = dgx1_v100();
        let ring = Ring::build(&topo, 8);
        let costs = NcclCosts {
            tuning: TuningSpace::paper(),
            ..NcclCosts::default()
        };
        for bytes in [1u64, 4 << 10, 256 << 20] {
            assert_eq!(
                choose_all_reduce(&topo, &ring, bytes, &costs).unwrap(),
                Selection::PAPER
            );
            assert_eq!(
                choose_broadcast(&topo, &ring, bytes, &costs).unwrap(),
                Selection::PAPER
            );
        }
    }

    #[test]
    fn modern_space_crosses_from_latency_to_bandwidth_choices() {
        let topo = dgx1_v100();
        let ring = Ring::build(&topo, 8);
        let costs = modern_costs();
        let small = choose_all_reduce(&topo, &ring, 4 << 10, &costs).unwrap();
        let large = choose_all_reduce(&topo, &ring, 256 << 20, &costs).unwrap();
        assert_eq!(small.protocol, Protocol::Ll, "4 KB should pick LL");
        assert_eq!(
            small.algorithm,
            Algorithm::Tree,
            "4 KB should pick the tree"
        );
        assert_eq!(
            large.protocol,
            Protocol::Simple,
            "256 MB should pick Simple"
        );
        assert_eq!(large.algorithm, Algorithm::Ring, "256 MB should ring");
    }

    #[test]
    fn broadcast_candidates_collapse_to_rings() {
        let topo = dgx1_v100();
        let ring = Ring::build(&topo, 8);
        let costs = modern_costs();
        for bytes in [4u64 << 10, 1 << 20, 64 << 20] {
            let sel = choose_broadcast(&topo, &ring, bytes, &costs).unwrap();
            assert_eq!(sel.algorithm, Algorithm::Ring);
        }
    }
}
