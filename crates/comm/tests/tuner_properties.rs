//! Property tests of the NCCL auto-tuner: the chosen candidate is
//! never beaten by an unchosen one at any swept size, selection is
//! deterministic, tuned cost is monotone in payload, and tuning on a
//! degraded topology never routes a collective through a killed link.

use proptest::prelude::*;
use voltascope_comm::{collective, tuner, Ring, Selection, TuningSpace};
use voltascope_topo::{dgx1_v100, Device, FaultSpec, Topology};

fn modern_costs() -> collective::NcclCosts {
    collective::NcclCosts {
        tuning: TuningSpace::modern(),
        ..collective::NcclCosts::default()
    }
}

/// Healthy DGX-1 plus the two canned degraded variants, with the links
/// each fault removes (as unordered GPU pairs) for route checks.
fn scenarios() -> Vec<(Topology, Vec<(Device, Device)>)> {
    let base = dgx1_v100();
    let g = Device::gpu;
    let dead_cable = base.apply(&FaultSpec::new().kill_link(g(3), g(5)));
    let dead_iface = base.apply(&FaultSpec::new().kill_nvlinks_of(g(3)));
    let iface_pairs: Vec<(Device, Device)> =
        (0..8).filter(|&o| o != 3).map(|o| (g(3), g(o))).collect();
    vec![
        (base, Vec::new()),
        (dead_cable, vec![(g(3), g(5))]),
        (dead_iface, iface_pairs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tuner's pick is an argmin: no candidate in the space
    /// predicts cheaper than the chosen selection, for AllReduce and
    /// Broadcast, on healthy and degraded topologies alike.
    #[test]
    fn chosen_selection_is_never_beaten(bytes in 1u64..(1 << 24)) {
        let costs = modern_costs();
        for (topo, _) in scenarios() {
            let ring = Ring::build(&topo, 8);
            let ar = tuner::choose_all_reduce(&topo, &ring, bytes, &costs).unwrap();
            let best = tuner::predict_all_reduce(&topo, &ring, bytes, &costs, &ar).unwrap();
            for rival in costs.tuning.candidates() {
                let t = tuner::predict_all_reduce(&topo, &ring, bytes, &costs, &rival).unwrap();
                prop_assert!(
                    t >= best,
                    "{}: {rival} predicts {t} < chosen {ar} at {best} ({bytes} bytes)",
                    topo.name()
                );
            }
            let bc = tuner::choose_broadcast(&topo, &ring, bytes, &costs).unwrap();
            let best = tuner::predict_broadcast(&topo, &ring, bytes, &costs, &bc).unwrap();
            for rival in costs.tuning.candidates() {
                let rival = Selection {
                    algorithm: voltascope_comm::Algorithm::Ring,
                    ..rival
                };
                let t = tuner::predict_broadcast(&topo, &ring, bytes, &costs, &rival).unwrap();
                prop_assert!(
                    t >= best,
                    "{}: broadcast {rival} predicts {t} < chosen {bc} at {best} ({bytes} bytes)",
                    topo.name()
                );
            }
        }
    }

    /// Selection is a pure function of (topology, size): re-tuning
    /// returns the identical candidate, so emission is reproducible.
    #[test]
    fn selection_is_deterministic(bytes in 1u64..(1 << 26)) {
        let costs = modern_costs();
        for (topo, _) in scenarios() {
            let ring = Ring::build(&topo, 8);
            let a = tuner::choose_all_reduce(&topo, &ring, bytes, &costs).unwrap();
            let b = tuner::choose_all_reduce(&topo, &ring, bytes, &costs).unwrap();
            prop_assert_eq!(a, b, "{}: re-tuning flipped the choice", topo.name());
            let a = tuner::choose_broadcast(&topo, &ring, bytes, &costs).unwrap();
            let b = tuner::choose_broadcast(&topo, &ring, bytes, &costs).unwrap();
            prop_assert_eq!(a, b, "{}: re-tuning flipped broadcast", topo.name());
        }
    }

    /// More bytes can never make the *tuned* AllReduce faster: the
    /// minimum over per-candidate monotone cost curves is monotone,
    /// even where the winning candidate flips.
    #[test]
    fn tuned_cost_is_monotone_in_payload(
        small in 1u64..(1 << 24),
        extra in 0u64..(1 << 24),
    ) {
        let costs = modern_costs();
        for (topo, _) in scenarios() {
            let ring = Ring::build(&topo, 8);
            let pick_lo = tuner::choose_all_reduce(&topo, &ring, small, &costs).unwrap();
            let lo = tuner::predict_all_reduce(&topo, &ring, small, &costs, &pick_lo).unwrap();
            let pick_hi =
                tuner::choose_all_reduce(&topo, &ring, small + extra, &costs).unwrap();
            let hi =
                tuner::predict_all_reduce(&topo, &ring, small + extra, &costs, &pick_hi).unwrap();
            prop_assert!(
                hi >= lo,
                "{}: {small} -> {} bytes shrank tuned cost {lo} -> {hi} ({pick_lo} -> {pick_hi})",
                topo.name(),
                small + extra
            );
        }
    }

    /// On a degraded topology, no tuned candidate can cross a killed
    /// link: the fault removes it from the graph, so any ring hop that
    /// coincides with a killed pair has no direct link left and must
    /// renegotiate onto a live host route — and when an all-NVLink
    /// cycle still exists (one dead cable), the ring avoids the dead
    /// pair entirely. The tuner's pick still completes on the faulted
    /// fabric (the predict simulation is the proof).
    #[test]
    fn degraded_tuning_avoids_killed_links(bytes in 1u64..(1 << 24)) {
        let costs = modern_costs();
        for (topo, dead) in scenarios() {
            let ring = Ring::build(&topo, 8);
            for (a, b) in ring.hops() {
                for &(x, y) in &dead {
                    if (a, b) == (x, y) || (a, b) == (y, x) {
                        prop_assert!(
                            topo.direct_link(a, b).is_none(),
                            "{}: killed link {x}<->{y} still directly usable",
                            topo.name()
                        );
                    }
                }
            }
            if dead.len() == 1 {
                // One dead cable leaves an NVLink Hamiltonian cycle;
                // the renegotiated ring must route around the fault.
                let (x, y) = dead[0];
                prop_assert!(ring.all_nvlink(&topo), "{}: ring left NVLink", topo.name());
                prop_assert!(
                    !ring.hops().contains(&(x, y)) && !ring.hops().contains(&(y, x)),
                    "{}: ring kept hopping the dead {x}<->{y} cable",
                    topo.name()
                );
            }
            let sel = tuner::choose_all_reduce(&topo, &ring, bytes, &costs).unwrap();
            let t = tuner::predict_all_reduce(&topo, &ring, bytes, &costs, &sel).unwrap();
            prop_assert!(t.as_secs_f64() > 0.0, "{}: degraded tuned AllReduce stalled", topo.name());
        }
    }
}
