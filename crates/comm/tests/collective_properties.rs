//! Property tests of the collective timing models: makespans are
//! monotone in payload size, chunked emission is metamorphic (the byte
//! split conserves the wire total and a solo collective's makespan),
//! and no configuration — including degraded topologies with dead
//! links or a dead NVLink interface — can deadlock the engine.

use std::collections::BTreeMap;

use proptest::prelude::*;
use voltascope_comm::{
    collective, BandwidthEfficiency, LinkNetwork, Protocol, Ring, Selection, TuningSpace,
};
use voltascope_sim::check::assert_schedule_invariants;
use voltascope_sim::{Engine, SimSpan, TaskGraph};
use voltascope_topo::{dgx1_v100, Device, FaultSpec, Topology};

/// Builds an `n`-GPU ring AllReduce of `bytes` on `topo` and returns
/// the makespan in seconds. Panics if the engine deadlocks.
fn ring_all_reduce_makespan(
    topo: &Topology,
    n: usize,
    bytes: u64,
    costs: &collective::NcclCosts,
) -> f64 {
    let mut graph = TaskGraph::new();
    let net = LinkNetwork::register(&mut graph, topo);
    let mut compute = BTreeMap::new();
    let mut ready: collective::PerGpuDone = BTreeMap::new();
    for g in 0..n {
        let d = Device::gpu(g as u8);
        compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
        ready.insert(d, graph.task(format!("ready@{d}")).build());
    }
    let ring = Ring::build(topo, n);
    collective::all_reduce(
        &mut graph,
        &net,
        topo,
        &ring,
        bytes,
        &ready,
        &compute,
        costs,
        &Selection::PAPER,
        "ar",
    )
    .expect("ring AllReduce volumes must not overflow");
    let s = Engine::new()
        .run(&graph)
        .expect("ring AllReduce must never deadlock");
    assert_schedule_invariants(&graph, &s);
    s.makespan().as_secs_f64()
}

/// Same for the flat tree AllReduce.
fn tree_all_reduce_makespan(
    topo: &Topology,
    n: usize,
    bytes: u64,
    costs: &collective::NcclCosts,
) -> f64 {
    let mut graph = TaskGraph::new();
    let net = LinkNetwork::register(&mut graph, topo);
    let mut compute = BTreeMap::new();
    let mut ready: collective::PerGpuDone = BTreeMap::new();
    let mut devs = Vec::new();
    for g in 0..n {
        let d = Device::gpu(g as u8);
        devs.push(d);
        compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
        ready.insert(d, graph.task(format!("ready@{d}")).build());
    }
    collective::tree_all_reduce(
        &mut graph,
        &net,
        topo,
        &devs,
        bytes,
        &ready,
        &compute,
        costs,
        &Selection::PAPER,
        "tar",
    )
    .expect("tree AllReduce volumes must not overflow");
    let s = Engine::new()
        .run(&graph)
        .expect("tree AllReduce must never deadlock");
    assert_schedule_invariants(&graph, &s);
    s.makespan().as_secs_f64()
}

/// Healthy DGX-1 plus the two canned degraded variants: one dead
/// cross-quad cable, and GPU3's whole NVLink interface down.
fn topologies() -> Vec<Topology> {
    let base = dgx1_v100();
    vec![
        base.apply(&FaultSpec::new().kill_link(Device::gpu(3), Device::gpu(5))),
        base.apply(&FaultSpec::new().kill_nvlinks_of(Device::gpu(3))),
        base,
    ]
}

fn arb_costs() -> impl Strategy<Value = collective::NcclCosts> {
    (0u64..1_000, 0u64..1_000, 0u64..100, 5u32..101, 0u64..1_000).prop_map(
        |(kernel, setup, step, eff, group)| collective::NcclCosts {
            kernel_overhead: SimSpan::from_micros(kernel),
            epoch_setup: SimSpan::from_micros(setup),
            step_overhead: SimSpan::from_micros(step),
            bandwidth_efficiency: BandwidthEfficiency::new(f64::from(eff) / 100.0)
                .expect("swept efficiencies are valid"),
            group_call_overhead: SimSpan::from_micros(group),
            tuning: TuningSpace::paper(),
            chunking: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More bytes can never make a ring AllReduce finish earlier, on
    /// the healthy and both degraded topologies.
    #[test]
    fn ring_all_reduce_is_monotone_in_payload(
        small in 1u64..(1 << 26),
        extra in 0u64..(1 << 26),
        n in 2usize..9,
    ) {
        let costs = collective::NcclCosts::default();
        for topo in topologies() {
            let lo = ring_all_reduce_makespan(&topo, n, small, &costs);
            let hi = ring_all_reduce_makespan(&topo, n, small + extra, &costs);
            prop_assert!(
                hi >= lo,
                "{}: {n} GPUs, {small} -> {} bytes shrank makespan {lo} -> {hi}",
                topo.name(),
                small + extra
            );
        }
    }

    /// Same monotonicity for the flat tree AllReduce.
    #[test]
    fn tree_all_reduce_is_monotone_in_payload(
        small in 1u64..(1 << 26),
        extra in 0u64..(1 << 26),
        n in 1usize..9,
    ) {
        let costs = collective::NcclCosts::default();
        for topo in topologies() {
            let lo = tree_all_reduce_makespan(&topo, n, small, &costs);
            let hi = tree_all_reduce_makespan(&topo, n, small + extra, &costs);
            prop_assert!(
                hi >= lo,
                "{}: {n} GPUs, {small} -> {} bytes shrank makespan {lo} -> {hi}",
                topo.name(),
                small + extra
            );
        }
    }

    /// Metamorphic: chunking a wire transfer conserves bytes exactly —
    /// the split sums back to the whole for any payload and protocol,
    /// chunk sizes differ by at most one byte, and the chunk count
    /// follows `ceil(wire / step)` clamped to the per-hop cap.
    #[test]
    fn chunk_split_conserves_bytes_for_any_payload(
        wire in 0u64..(1u64 << 40),
        proto_sel in 0usize..3,
    ) {
        let p = Protocol::ALL[proto_sel % Protocol::ALL.len()];
        let chunks = collective::chunk_split(wire, p);
        prop_assert_eq!(
            chunks.iter().sum::<u64>(),
            wire,
            "split of {} for {:?} lost bytes",
            wire,
            p
        );
        prop_assert_eq!(
            chunks.len() as u64,
            wire.div_ceil(p.chunk_bytes()).clamp(1, 32),
            "chunk count law broken for {} bytes under {:?}",
            wire,
            p
        );
        let min = *chunks.iter().min().unwrap();
        let max = *chunks.iter().max().unwrap();
        prop_assert!(max - min <= 1, "uneven split of {} for {:?}", wire, p);
    }

    /// Metamorphic: with no contending collective, chunked emission
    /// re-times the same link work at a finer granularity — the solo
    /// ring makespan is conserved up to per-chunk integer-nanosecond
    /// rounding.
    #[test]
    fn chunking_preserves_the_solo_ring_makespan(
        bytes in 1u64..(1 << 26),
        n in 2usize..9,
    ) {
        let topo = dgx1_v100();
        let mut costs = collective::NcclCosts::default();
        let whole = ring_all_reduce_makespan(&topo, n, bytes, &costs);
        costs.chunking = true;
        let chunked = ring_all_reduce_makespan(&topo, n, bytes, &costs);
        // Each of <= 32 chunks per hop rounds its transfer to whole
        // nanoseconds, so allow sub-microsecond absolute drift.
        prop_assert!(
            (chunked - whole).abs() <= 1e-6 * whole + 1e-6,
            "chunking moved a solo ring makespan: {} -> {} ({} bytes, {} GPUs)",
            whole,
            chunked,
            bytes,
            n
        );
    }

    /// No GPU count, payload, or cost parameterisation deadlocks either
    /// collective, healthy or degraded: the `expect`s inside the
    /// helpers are the assertion.
    #[test]
    fn collectives_never_deadlock(
        bytes in 1u64..(1 << 27),
        costs in arb_costs(),
    ) {
        for topo in topologies() {
            for n in 1..=8usize {
                let ring = ring_all_reduce_makespan(&topo, n, bytes, &costs);
                let tree = tree_all_reduce_makespan(&topo, n, bytes, &costs);
                prop_assert!(ring.is_finite() && ring >= 0.0);
                prop_assert!(tree.is_finite() && tree >= 0.0);
            }
        }
    }
}
