//! Device memory accounting with framework-pool semantics.
//!
//! DNN frameworks allocate through a caching pool: `cudaFree` returns
//! memory to the pool, not to the driver, so the usage `nvidia-smi`
//! reports is the *high-water mark* of pool allocations plus the CUDA
//! context. Table IV of the paper is built from exactly that number;
//! [`MemoryPool::device_reported`] reproduces it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide pool-id counter: every [`MemoryPool`] gets a distinct
/// tag so a handle can never be freed into the wrong pool, even when
/// two pools happen to issue the same allocation id.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

/// Returned when an allocation would exceed device capacity — the
/// condition that capped the paper's batch sizes at 64 for Inception-v3
/// and ResNet (§V-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested (after rounding).
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
    /// Label of the failed allocation.
    pub label: String,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory allocating '{}': requested {} bytes, {} available",
            self.label, self.requested, self.available
        )
    }
}

impl std::error::Error for OomError {}

/// Handle to a live allocation in a [`MemoryPool`]. Tagged with its
/// pool's identity, so freeing it into a different pool panics instead
/// of silently corrupting that pool's accounting on an id collision.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Allocation {
    pool: u64,
    id: u32,
    bytes: u64,
}

impl Allocation {
    /// Size of the allocation in bytes (after rounding).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A device memory pool with high-water-mark accounting.
///
/// # Example
///
/// ```
/// use voltascope_gpu::MemoryPool;
///
/// let mut pool = MemoryPool::new(1 << 30, 100 << 20); // 1 GiB, 100 MiB context
/// let weights = pool.alloc(200 << 20, "weights")?;
/// let act = pool.alloc(300 << 20, "activations")?;
/// pool.free(act);
/// // The pool caches freed memory: nvidia-smi still sees the peak.
/// assert_eq!(pool.device_reported(), (100 << 20) + pool.peak_used());
/// assert_eq!(pool.current_used(), weights.bytes());
/// # Ok::<(), voltascope_gpu::OomError>(())
/// ```
#[derive(Debug)]
pub struct MemoryPool {
    pool_id: u64,
    capacity: u64,
    context: u64,
    current: u64,
    peak: u64,
    next_id: u32,
    live: Vec<u32>,
}

/// cudaMalloc rounds allocations up to 512-byte granularity.
const GRANULARITY: u64 = 512;

impl MemoryPool {
    /// Creates a pool for a device of `capacity` bytes with `context`
    /// bytes permanently consumed by the CUDA context.
    ///
    /// # Panics
    ///
    /// Panics if the context alone exceeds capacity.
    pub fn new(capacity: u64, context: u64) -> Self {
        assert!(context <= capacity, "context larger than device memory");
        MemoryPool {
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            context,
            current: 0,
            peak: 0,
            next_id: 0,
            live: Vec::new(),
        }
    }

    /// Allocates `bytes` (rounded up to 512-byte granularity).
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the allocation would exceed the
    /// device's capacity net of the CUDA context.
    pub fn alloc(&mut self, bytes: u64, label: &str) -> Result<Allocation, OomError> {
        let rounded = bytes.div_ceil(GRANULARITY) * GRANULARITY;
        let available = self.capacity - self.context - self.current;
        if rounded > available {
            return Err(OomError {
                requested: rounded,
                available,
                label: label.to_string(),
            });
        }
        self.current += rounded;
        self.peak = self.peak.max(self.current);
        let id = self.next_id;
        self.next_id += 1;
        self.live.push(id);
        Ok(Allocation {
            pool: self.pool_id,
            id,
            bytes: rounded,
        })
    }

    /// Returns an allocation to the pool. Consuming the handle makes
    /// double-free unrepresentable.
    ///
    /// # Panics
    ///
    /// Panics if the allocation belongs to a different pool.
    pub fn free(&mut self, allocation: Allocation) {
        assert_eq!(
            allocation.pool, self.pool_id,
            "allocation does not belong to this pool"
        );
        let pos = self
            .live
            .iter()
            .position(|&id| id == allocation.id)
            .expect("allocation unknown to its own pool");
        self.live.swap_remove(pos);
        self.current -= allocation.bytes;
    }

    /// Bytes currently allocated (excludes context).
    pub fn current_used(&self) -> u64 {
        self.current
    }

    /// High-water mark of allocations (excludes context).
    pub fn peak_used(&self) -> u64 {
        self.peak
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// What `nvidia-smi` would report for this device: the CUDA context
    /// plus the pool's cached high-water mark.
    pub fn device_reported(&self) -> u64 {
        self.context + self.peak
    }

    /// Bytes still allocatable right now.
    pub fn available(&self) -> u64 {
        self.capacity - self.context - self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_rounds_to_granularity() {
        let mut pool = MemoryPool::new(1 << 20, 0);
        let a = pool.alloc(1, "one byte").unwrap();
        assert_eq!(a.bytes(), 512);
        assert_eq!(pool.current_used(), 512);
        pool.free(a);
    }

    #[test]
    fn oom_reports_request_and_availability() {
        let mut pool = MemoryPool::new(1024, 512);
        let err = pool.alloc(1024, "too big").unwrap_err();
        assert_eq!(err.requested, 1024);
        assert_eq!(err.available, 512);
        assert!(err.to_string().contains("too big"));
    }

    #[test]
    fn context_consumes_capacity() {
        let mut pool = MemoryPool::new(2048, 1024);
        assert_eq!(pool.available(), 1024);
        assert!(pool.alloc(1024, "fits").is_ok());
        assert!(pool.alloc(512, "overflows").is_err());
    }

    #[test]
    fn peak_survives_frees() {
        let mut pool = MemoryPool::new(1 << 20, 4096);
        let a = pool.alloc(512 * 10, "a").unwrap();
        let b = pool.alloc(512 * 20, "b").unwrap();
        pool.free(a);
        pool.free(b);
        assert_eq!(pool.current_used(), 0);
        assert_eq!(pool.peak_used(), 512 * 30);
        assert_eq!(pool.device_reported(), 4096 + 512 * 30);
    }

    #[test]
    fn freed_memory_is_reusable() {
        let mut pool = MemoryPool::new(2048, 0);
        let a = pool.alloc(2048, "all").unwrap();
        pool.free(a);
        assert!(pool.alloc(2048, "again").is_ok());
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn cross_pool_free_panics() {
        let mut p1 = MemoryPool::new(4096, 0);
        let mut p2 = MemoryPool::new(4096, 0);
        let a = p1.alloc(512, "a").unwrap();
        let _b = p2.alloc(512, "b").unwrap();
        // `a` and `_b` share allocation id 0 (ids restart per pool),
        // but the pool tag makes the misuse panic instead of silently
        // corrupting p2's accounting.
        p2.free(a);
    }

    #[test]
    fn colliding_ids_cannot_corrupt_accounting() {
        // Before pool tagging, a foreign handle with a colliding id was
        // accepted and `current` went negative on the next legal free.
        let mut p1 = MemoryPool::new(1 << 20, 0);
        let mut p2 = MemoryPool::new(1 << 20, 0);
        let a1 = p1.alloc(1024, "a1").unwrap();
        let a2 = p2.alloc(2048, "a2").unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p2.free(a1)));
        assert!(caught.is_err(), "cross-pool free must panic");
        // p2's accounting is untouched by the rejected free.
        assert_eq!(p2.current_used(), 2048);
        assert_eq!(p2.live_allocations(), 1);
        p2.free(a2);
        assert_eq!(p2.current_used(), 0);
    }

    proptest! {
        /// Random alloc/free interleavings never violate the accounting
        /// invariants.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec(0u64..4_000_000, 1..60)) {
            let mut pool = MemoryPool::new(64 << 20, 1 << 20);
            let mut held = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                if i % 3 == 2 && !held.is_empty() {
                    let a: Allocation = held.swap_remove((op % held.len() as u64) as usize);
                    pool.free(a);
                } else if let Ok(a) = pool.alloc(*op, "prop") {
                    held.push(a);
                }
                prop_assert!(pool.current_used() <= pool.peak_used());
                prop_assert!(pool.device_reported() <= pool.capacity());
                prop_assert_eq!(
                    pool.current_used(),
                    held.iter().map(|a| a.bytes()).sum::<u64>()
                );
            }
            let total: u64 = held.iter().map(|a| a.bytes()).sum();
            prop_assert_eq!(pool.current_used(), total);
            for a in held.drain(..) {
                pool.free(a);
            }
            prop_assert_eq!(pool.current_used(), 0);
            prop_assert_eq!(pool.live_allocations(), 0);
        }
    }
}
