//! CUDA host-runtime API cost model.
//!
//! The paper's Table III shows `cudaStreamSynchronize` consuming a
//! large share of LeNet's training time and that share falling as the
//! batch size grows: the per-call CPU cost is fixed, while the work
//! between synchronisations grows. We reproduce that by charging every
//! runtime call a fixed duration on the host thread resource.

use voltascope_sim::SimSpan;

/// The CUDA runtime calls the simulator charges for. Each variant maps
/// to the nvprof API-trace row of the same name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ApiCall {
    /// `cudaLaunchKernel` — one per kernel.
    LaunchKernel,
    /// `cudaMemcpyAsync` — one per DMA transfer issued.
    MemcpyAsync,
    /// `cudaStreamSynchronize` — host blocks until a stream drains.
    StreamSynchronize,
    /// `cudaEventRecord` — cheap marker used by framework dependency
    /// tracking.
    EventRecord,
    /// `cudaMalloc` — only charged on pool misses (framework allocators
    /// cache aggressively).
    Malloc,
}

impl ApiCall {
    /// The nvprof display name of this call.
    pub fn name(self) -> &'static str {
        match self {
            ApiCall::LaunchKernel => "cudaLaunchKernel",
            ApiCall::MemcpyAsync => "cudaMemcpyAsync",
            ApiCall::StreamSynchronize => "cudaStreamSynchronize",
            ApiCall::EventRecord => "cudaEventRecord",
            ApiCall::Malloc => "cudaMalloc",
        }
    }

    /// The trace category under which the call is recorded
    /// (`"api.cudaStreamSynchronize"` etc.), so nvprof-style summaries
    /// can aggregate by call name with the `api.` prefix.
    pub fn category(self) -> String {
        format!("api.{}", self.name())
    }
}

/// Fixed CPU-side cost per runtime call.
///
/// # Example
///
/// ```
/// use voltascope_gpu::{ApiCall, ApiCostModel};
///
/// let costs = ApiCostModel::default();
/// // Synchronisation is the expensive call (Table III's culprit).
/// assert!(costs.cost(ApiCall::StreamSynchronize) > costs.cost(ApiCall::LaunchKernel));
/// ```
#[derive(Debug, Clone)]
pub struct ApiCostModel {
    /// Cost of `cudaLaunchKernel`.
    pub launch_kernel: SimSpan,
    /// Cost of `cudaMemcpyAsync` (issue only; the DMA itself is a
    /// separate link task).
    pub memcpy_async: SimSpan,
    /// Fixed cost of `cudaStreamSynchronize` beyond the actual wait:
    /// syscall, spin-to-sleep transition, wakeup.
    pub stream_synchronize: SimSpan,
    /// Cost of `cudaEventRecord`.
    pub event_record: SimSpan,
    /// Cost of a real `cudaMalloc` (pool miss).
    pub malloc: SimSpan,
}

impl Default for ApiCostModel {
    /// Defaults measured in the ballpark of driver 396.x on Broadwell
    /// Xeons (the DGX-1's E5-2698 v4): single-digit microseconds per
    /// call, tens for synchronisation.
    fn default() -> Self {
        ApiCostModel {
            launch_kernel: SimSpan::from_micros(7),
            memcpy_async: SimSpan::from_micros(9),
            stream_synchronize: SimSpan::from_micros(25),
            event_record: SimSpan::from_micros(2),
            malloc: SimSpan::from_micros(80),
        }
    }
}

impl ApiCostModel {
    /// The fixed CPU time charged for `call`.
    pub fn cost(&self, call: ApiCall) -> SimSpan {
        match call {
            ApiCall::LaunchKernel => self.launch_kernel,
            ApiCall::MemcpyAsync => self.memcpy_async,
            ApiCall::StreamSynchronize => self.stream_synchronize,
            ApiCall::EventRecord => self.event_record,
            ApiCall::Malloc => self.malloc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_cuda() {
        assert_eq!(ApiCall::StreamSynchronize.name(), "cudaStreamSynchronize");
        assert_eq!(
            ApiCall::StreamSynchronize.category(),
            "api.cudaStreamSynchronize"
        );
    }

    #[test]
    fn every_call_has_nonzero_cost() {
        let m = ApiCostModel::default();
        for call in [
            ApiCall::LaunchKernel,
            ApiCall::MemcpyAsync,
            ApiCall::StreamSynchronize,
            ApiCall::EventRecord,
            ApiCall::Malloc,
        ] {
            assert!(!m.cost(call).is_zero(), "{} is free", call.name());
        }
    }

    #[test]
    fn sync_dominates_launch() {
        let m = ApiCostModel::default();
        assert!(m.cost(ApiCall::StreamSynchronize) > m.cost(ApiCall::LaunchKernel));
    }
}
