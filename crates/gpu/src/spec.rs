//! GPU hardware specifications.

use voltascope_sim::SimSpan;

/// Static description of a GPU model.
///
/// The default constructor of interest is [`GpuSpec::tesla_v100`],
/// matching the DGX-1 of the paper (§IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Tesla V100-SXM2-16GB"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Peak single-precision throughput in FLOP/s.
    pub fp32_flops: f64,
    /// Peak tensor-core throughput in FLOP/s (mixed-precision matrix
    /// ops; the paper notes cuDNN uses these for the DNN workloads).
    pub tensor_flops: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Device memory bandwidth in bytes/s (HBM2).
    pub memory_bandwidth: f64,
    /// Minimum duration of any kernel on the device (ramp-up, tail
    /// effects); small kernels cannot go faster than this.
    pub min_kernel_time: SimSpan,
    /// Bytes reserved per process by the CUDA context, cuDNN/cuBLAS
    /// handles and NCCL communicators. `nvidia-smi` reports this on top
    /// of framework allocations.
    pub context_bytes: u64,
}

impl GpuSpec {
    /// The Tesla V100-SXM2-16GB of the paper's DGX-1: 80 SMs, 15.7
    /// TFLOPS FP32, 125 TFLOPS tensor (§IV-A — the paper quotes the "7x
    /// faster with tensor cores" figure), 16 GB HBM2 at 900 GB/s.
    pub fn tesla_v100() -> Self {
        GpuSpec {
            name: "Tesla V100-SXM2-16GB".to_string(),
            sm_count: 80,
            fp32_flops: 15.7e12,
            tensor_flops: 125e12,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            memory_bandwidth: 900e9,
            min_kernel_time: SimSpan::from_micros(4),
            // CUDA context + cuDNN workspace handles; ~0.45 GB matches
            // the observed baseline of framework memory reports.
            context_bytes: 450 * 1024 * 1024,
        }
    }

    /// The Tesla P100-SXM2-16GB of the Pascal-generation DGX-1 (the
    /// platform of the Gawande et al. comparison the paper cites in
    /// §III): 56 SMs, 10.6 TFLOPS FP32, no tensor cores, 16 GB HBM2 at
    /// 732 GB/s, NVLink 1.0.
    pub fn tesla_p100() -> Self {
        GpuSpec {
            name: "Tesla P100-SXM2-16GB".to_string(),
            sm_count: 56,
            fp32_flops: 10.6e12,
            // No tensor cores: matrix kernels run at the FP32 peak.
            tensor_flops: 10.6e12,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            memory_bandwidth: 732e9,
            min_kernel_time: SimSpan::from_micros(4),
            context_bytes: 450 * 1024 * 1024,
        }
    }

    /// Usable memory after the CUDA context is resident.
    pub fn usable_memory(&self) -> u64 {
        self.memory_bytes.saturating_sub(self.context_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_figures() {
        let v = GpuSpec::tesla_v100();
        assert_eq!(v.sm_count, 80);
        assert_eq!(v.memory_bytes, 16 * 1024 * 1024 * 1024);
        // Tensor cores are ~8x FP32 peak (paper says "7x faster").
        let ratio = v.tensor_flops / v.fp32_flops;
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn p100_has_no_tensor_advantage() {
        let p = GpuSpec::tesla_p100();
        assert_eq!(p.fp32_flops, p.tensor_flops);
        assert!(p.fp32_flops < GpuSpec::tesla_v100().fp32_flops);
    }

    #[test]
    fn usable_memory_subtracts_context() {
        let v = GpuSpec::tesla_v100();
        assert_eq!(v.usable_memory(), v.memory_bytes - v.context_bytes);
    }
}
