//! Kernel execution-time model.

use voltascope_sim::SimSpan;

use crate::spec::GpuSpec;

/// Converts per-kernel work into execution time on a [`GpuSpec`].
///
/// The model has three regimes, matching the behaviour the paper
/// observes across its workload spectrum:
///
/// * **Launch-bound**: kernels cannot finish faster than
///   [`GpuSpec::min_kernel_time`] (LeNet's tiny convolutions live here,
///   which is why its training barely speeds up with more GPUs).
/// * **Efficiency-limited**: achieved throughput is
///   `peak * max_efficiency * w / (w + knee)` for `w` FLOPs of work —
///   a saturating curve, so doubling the batch size (doubling `w` per
///   kernel) raises utilisation until the cores saturate (§V-A).
/// * **Memory-bound**: time is at least `bytes_touched / mem_bw`
///   (pooling and activation layers).
///
/// # Example
///
/// ```
/// use voltascope_gpu::{GpuSpec, KernelCostModel};
///
/// let model = KernelCostModel::new(&GpuSpec::tesla_v100());
/// // Bigger kernels achieve higher efficiency:
/// assert!(model.efficiency(1e9) > model.efficiency(1e6));
/// // Doubling work less than doubles time (amortisation):
/// let t1 = model.kernel_time(1e8, false);
/// let t2 = model.kernel_time(2e8, false);
/// assert!(t2 < t1 * 2);
/// ```
#[derive(Debug, Clone)]
pub struct KernelCostModel {
    /// Peak FP32 throughput (FLOP/s).
    pub fp32_flops: f64,
    /// Peak tensor-core throughput (FLOP/s).
    pub tensor_flops: f64,
    /// Device memory bandwidth (bytes/s).
    pub memory_bandwidth: f64,
    /// Fraction of peak a perfectly-sized kernel achieves. The default
    /// is deliberately low (0.055 of the tensor-core peak = ~6.9
    /// TFLOP/s): at the paper's per-GPU batch sizes of 16-64, FP32
    /// cuDNN kernels are shape- and memory-limited far below marketing
    /// peak (MXNet 18.04 V100 training throughputs correspond to
    /// single-digit effective TFLOP/s). Note the curve implies a fixed
    /// per-kernel term of `knee/(peak*max_efficiency)` (~7 us), which
    /// doubles as the kernel ramp cost.
    pub max_efficiency: f64,
    /// FLOPs at which a kernel reaches half of `max_efficiency`.
    pub knee_flops: f64,
    /// Minimum kernel duration.
    pub min_kernel_time: SimSpan,
}

impl KernelCostModel {
    /// Builds the default model for `spec` (calibration defaults chosen
    /// in `voltascope::calibration`; override fields to ablate).
    pub fn new(spec: &GpuSpec) -> Self {
        KernelCostModel {
            fp32_flops: spec.fp32_flops,
            tensor_flops: spec.tensor_flops,
            memory_bandwidth: spec.memory_bandwidth,
            max_efficiency: 0.055,
            knee_flops: 5.0e7,
            min_kernel_time: spec.min_kernel_time,
        }
    }

    /// Derives a uniformly slowed copy of this model: a straggler or
    /// thermally-throttled GPU whose clocks run `factor`× slower. All
    /// three regimes scale exactly by `factor` — compute and memory
    /// peaks are divided, the launch floor is multiplied — so a slowed
    /// kernel takes exactly `factor`× the healthy duration regardless
    /// of which regime wins the roofline max.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`: faults degrade, they never speed up.
    pub fn slowed(&self, factor: f64) -> KernelCostModel {
        assert!(
            factor >= 1.0,
            "slowdown factor {factor} must be >= 1 (a straggler cannot be faster than healthy)"
        );
        KernelCostModel {
            fp32_flops: self.fp32_flops / factor,
            tensor_flops: self.tensor_flops / factor,
            memory_bandwidth: self.memory_bandwidth / factor,
            min_kernel_time: self.min_kernel_time.mul_f64(factor),
            ..self.clone()
        }
    }

    /// Achieved fraction of peak for a kernel of `flops` work.
    pub fn efficiency(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        self.max_efficiency * flops / (flops + self.knee_flops)
    }

    /// Execution time of a compute-only kernel of `flops` work.
    /// `tensor_cores` selects the tensor-core peak (used for the conv
    /// and GEMM kernels of the DNN workloads, §IV-A).
    pub fn kernel_time(&self, flops: f64, tensor_cores: bool) -> SimSpan {
        self.kernel_time_with_bytes(flops, 0, tensor_cores)
    }

    /// Execution time of a kernel doing `flops` arithmetic and touching
    /// `bytes` of device memory; the slower of the compute and memory
    /// estimates wins (roofline).
    pub fn kernel_time_with_bytes(&self, flops: f64, bytes: u64, tensor_cores: bool) -> SimSpan {
        let peak = if tensor_cores {
            self.tensor_flops
        } else {
            self.fp32_flops
        };
        let eff = self.efficiency(flops);
        let compute = if flops > 0.0 && eff > 0.0 {
            SimSpan::from_secs_f64(flops / (peak * eff))
        } else {
            SimSpan::ZERO
        };
        let memory = SimSpan::from_secs_f64(bytes as f64 / self.memory_bandwidth);
        compute.max(memory).max(self.min_kernel_time)
    }

    /// Execution time of a trivially-parallel elementwise kernel
    /// (gradient accumulation, SGD update) touching `bytes` of device
    /// memory: purely bandwidth-bound, floored at the minimum kernel
    /// time. These kernels never pay the efficiency-curve ramp — the
    /// paper notes the WU arithmetic is a trivial `Y = aX + B` (§V-C).
    pub fn elementwise_kernel_time(&self, bytes: u64) -> SimSpan {
        SimSpan::from_secs_f64(bytes as f64 / self.memory_bandwidth).max(self.min_kernel_time)
    }

    /// Achieved utilisation (fraction of peak) for a kernel of `flops`
    /// work, accounting for the launch-bound floor — this is the figure
    /// the paper quotes as "compute utilisation" (18.3% for LeNet).
    pub fn achieved_utilization(&self, flops: f64, tensor_cores: bool) -> f64 {
        let t = self.kernel_time(flops, tensor_cores).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let peak = if tensor_cores {
            self.tensor_flops
        } else {
            self.fp32_flops
        };
        (flops / t / peak).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KernelCostModel {
        KernelCostModel::new(&GpuSpec::tesla_v100())
    }

    #[test]
    fn efficiency_saturates() {
        let m = model();
        assert_eq!(m.efficiency(0.0), 0.0);
        let half = m.efficiency(m.knee_flops);
        assert!((half - m.max_efficiency / 2.0).abs() < 1e-12);
        assert!(m.efficiency(1e15) < m.max_efficiency);
        assert!(m.efficiency(1e15) > 0.99 * m.max_efficiency);
    }

    #[test]
    fn tiny_kernels_hit_the_floor() {
        let m = model();
        // Zero-work kernels pay exactly the launch floor; near-zero-work
        // kernels pay the ramp constant knee/(peak*max_eff) (~7 us),
        // never less than the floor.
        assert_eq!(m.kernel_time(0.0, true), m.min_kernel_time);
        let tiny = m.kernel_time(1.0, true);
        assert!(tiny >= m.min_kernel_time);
        assert!(tiny < m.min_kernel_time * 3, "tiny kernel took {tiny}");
    }

    #[test]
    fn tensor_cores_speed_up_big_kernels() {
        let m = model();
        let fp32 = m.kernel_time(1e10, false);
        let tensor = m.kernel_time(1e10, true);
        assert!(tensor < fp32);
        let ratio = fp32.as_secs_f64() / tensor.as_secs_f64();
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memory_bound_kernels_follow_bandwidth() {
        let m = model();
        // 9 GB touched at 900 GB/s = 10 ms, far above the compute time.
        let t = m.kernel_time_with_bytes(1e6, 9_000_000_000, false);
        assert_eq!(t.as_millis(), 10);
    }

    #[test]
    fn time_is_monotone_in_work() {
        let m = model();
        let mut last = SimSpan::ZERO;
        for exp in 4..14 {
            let t = m.kernel_time(10f64.powi(exp), true);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn elementwise_kernels_are_bandwidth_bound() {
        let m = model();
        // 900 MB at 900 GB/s = 1 ms.
        assert_eq!(m.elementwise_kernel_time(900_000_000).as_millis(), 1);
        // Tiny updates hit the launch floor, not the efficiency ramp.
        assert_eq!(m.elementwise_kernel_time(1024), m.min_kernel_time);
        assert!(m.elementwise_kernel_time(1024) < m.kernel_time(1024.0, false));
    }

    #[test]
    fn utilization_grows_with_work_and_caps_at_one() {
        let m = model();
        let small = m.achieved_utilization(1e6, true);
        let large = m.achieved_utilization(1e11, true);
        assert!(small < large);
        assert!(large <= m.max_efficiency + 1e-9);
    }

    #[test]
    fn slowed_scales_every_regime_exactly() {
        let m = model();
        let s = m.slowed(1.5);
        // Compute-bound, memory-bound and launch-bound kernels all take
        // exactly 1.5x the healthy time.
        for (flops, bytes) in [(1e10, 0), (1e6, 9_000_000_000), (0.0, 0)] {
            let healthy = m.kernel_time_with_bytes(flops, bytes, true).as_secs_f64();
            let slow = s.kernel_time_with_bytes(flops, bytes, true).as_secs_f64();
            assert!(
                (slow / healthy - 1.5).abs() < 1e-6,
                "flops={flops} bytes={bytes}: {slow} / {healthy}"
            );
        }
        let healthy = m.elementwise_kernel_time(900_000_000).as_secs_f64();
        let slow = s.elementwise_kernel_time(900_000_000).as_secs_f64();
        assert!((slow / healthy - 1.5).abs() < 1e-6);
    }

    #[test]
    fn slowed_by_one_is_identity() {
        let m = model();
        let s = m.slowed(1.0);
        assert_eq!(m.kernel_time(1e9, true), s.kernel_time(1e9, true));
        assert_eq!(m.min_kernel_time, s.min_kernel_time);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn slowed_rejects_speedups() {
        model().slowed(0.5);
    }

    #[test]
    fn doubling_work_sublinear_in_unsaturated_regime() {
        let m = model();
        let t1 = m.kernel_time(5e8, true).as_secs_f64();
        let t2 = m.kernel_time(1e9, true).as_secs_f64();
        assert!(t2 / t1 < 2.0);
        assert!(t2 / t1 > 1.0);
    }
}
