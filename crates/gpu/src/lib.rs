//! # voltascope-gpu — analytic Volta GPU and CUDA runtime model
//!
//! Models the compute side of the DGX-1: Tesla V100 GPUs with their SM
//! array, FP32 and tensor-core peak throughput, HBM2 capacity, and the
//! CUDA host runtime whose per-call overheads the paper quantifies
//! (Table III is entirely about `cudaStreamSynchronize` time share).
//!
//! Three ingredients matter for reproducing the paper:
//!
//! 1. **A kernel cost model** ([`KernelCostModel`]) that converts a
//!    layer's FLOP count into execution time through a *saturating
//!    efficiency curve*: small kernels (LeNet at batch 16) achieve a
//!    small fraction of peak, so training time does not scale down
//!    linearly with GPU count; large kernels (Inception-v3) approach
//!    the cuDNN-typical fraction of peak.
//! 2. **A host API cost model** ([`ApiCostModel`]) with fixed per-call
//!    CPU time for kernel launches, async memcpy issues, and stream
//!    synchronisation; the amortisation of these costs with batch size
//!    is what Table III and the weak-scaling discussion measure.
//! 3. **A device memory model** ([`MemoryPool`]) with pool semantics
//!    like the framework allocators `nvidia-smi` observes: memory is
//!    cached after free, so reported usage is the high-water mark plus
//!    the CUDA context (Table IV).
//!
//! # Example
//!
//! ```
//! use voltascope_gpu::{GpuSpec, KernelCostModel};
//!
//! let v100 = GpuSpec::tesla_v100();
//! let model = KernelCostModel::new(&v100);
//! // A 2 GFLOP kernel (large conv) runs near peak; a 2 MFLOP kernel
//! // (tiny conv) is launch-bound and far from peak.
//! let big = model.kernel_time(2e9, true);
//! let small = model.kernel_time(2e6, true);
//! assert!(big.as_secs_f64() / 1000.0 < small.as_secs_f64() * 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod compute;
mod memory;
mod spec;

pub use api::{ApiCall, ApiCostModel};
pub use compute::KernelCostModel;
pub use memory::{Allocation, MemoryPool, OomError};
pub use spec::GpuSpec;

// Compile-time guarantee for the parallel experiment grid: hardware
// specs and cost models are shared read-only across sweep threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GpuSpec>();
    assert_send_sync::<KernelCostModel>();
    assert_send_sync::<ApiCostModel>();
};
