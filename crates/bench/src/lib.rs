//! # voltascope-bench — paper table/figure regeneration binaries
//!
//! One binary per artefact of the paper's evaluation section (see
//! DESIGN.md §3 for the index). Each binary prints the corresponding
//! table to stdout; pass `--csv` to emit CSV instead. Criterion
//! micro-benchmarks of the simulator itself live under `benches/`.
//!
//! ```text
//! cargo run --release -p voltascope-bench --bin table1
//! cargo run --release -p voltascope-bench --bin fig3_training_time
//! ...
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use voltascope::grid::{Cell, Executor, GridOut, GridSpec};
use voltascope::service::sched::{SchedConfig, Scheduler, SubmitOpts};
use voltascope::service::{persist, GridService};
use voltascope::Harness;
use voltascope_profile::TextTable;
use voltascope_train::EpochReport;

/// Environment variable naming the snapshot file the sweep binaries
/// warm-start from and re-save to. Unset → plain in-memory service.
pub const CACHE_ENV: &str = "VOLTASCOPE_CACHE";

/// Environment variable switching the ported binaries onto the async
/// scheduler front end (`1`/anything non-zero). The output is
/// byte-identical either way — the flag exists so CI can prove it.
pub const ASYNC_ENV: &str = "VOLTASCOPE_ASYNC";

/// Reads the [`ASYNC_ENV`] opt-in: unset, empty, or `0` means the
/// blocking path; anything else routes sweeps through the scheduler.
pub fn async_from_env() -> bool {
    match std::env::var(ASYNC_ENV) {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
    }
}

/// The request front end a ported binary issues its sweeps through:
/// the blocking [`GridService`] by default, or the async
/// [`Scheduler`] ticket path under `VOLTASCOPE_ASYNC=1`. Both produce
/// byte-identical reports and (for sequential request streams)
/// identical service statistics.
pub enum Front {
    /// Direct blocking sweeps.
    Blocking(Arc<GridService>),
    /// Ticket-based sweeps through the scheduler's worker pool.
    Async(Scheduler),
}

impl Front {
    /// Builds the environment-selected front end over the
    /// environment-selected service (see [`service`]).
    pub fn from_env() -> Self {
        Self::over(service())
    }

    /// Wraps an explicit service in the environment-selected front
    /// end. The scheduler's worker count follows `VOLTASCOPE_THREADS`
    /// (via [`SchedConfig::default`]), mirroring the blocking
    /// executor selection, and its within-band dispatch order follows
    /// `VOLTASCOPE_SCHED_ORDER` (default: longest-expected-first by
    /// [`voltascope::service::sched::cost_rank`]; `fifo` preserves
    /// admission order — either way
    /// the output is byte-identical, only the schedule moves).
    pub fn over(service: GridService) -> Self {
        let service = Arc::new(service);
        if async_from_env() {
            let sched = Scheduler::new(service, SchedConfig::default());
            eprintln!(
                "voltascope-bench: async scheduler front end ({} workers)",
                sched.config().workers
            );
            Front::Async(sched)
        } else {
            Front::Blocking(service)
        }
    }

    /// The underlying service (for stats, snapshots, and the base
    /// harness renderers post-process with).
    pub fn service(&self) -> &GridService {
        match self {
            Front::Blocking(service) => service,
            Front::Async(sched) => sched.service(),
        }
    }

    /// Runs one sweep through the selected path.
    pub fn sweep(&self, spec: &GridSpec) -> GridOut<Arc<EpochReport>> {
        match self {
            Front::Blocking(service) => service.sweep(spec),
            Front::Async(sched) => sched.sweep(spec),
        }
    }

    /// Runs one trace-guaranteed sweep through the selected path (see
    /// [`GridService::sweep_traced`]).
    pub fn sweep_traced(&self, spec: &GridSpec) -> GridOut<Arc<EpochReport>> {
        match self {
            Front::Blocking(service) => service.sweep_traced(spec),
            Front::Async(sched) => sched.sweep_opts(spec, SubmitOpts::default().traced(true)),
        }
    }
}

/// Builds the [`GridService`] a regeneration binary issues its sweeps
/// through. With `VOLTASCOPE_CACHE=<path>` set, the service warm-starts
/// from that snapshot (load-or-empty: a missing, stale, or corrupt file
/// just means a cold start) and the binary should call [`save_service`]
/// before exiting to persist what it computed. Status goes to stderr so
/// the golden stdout tables stay byte-identical either way.
pub fn service() -> GridService {
    let base = Harness::paper();
    match std::env::var(CACHE_ENV) {
        Ok(path) if !path.is_empty() => {
            let (service, status) = GridService::with_snapshot(base, Executor::from_env(), &path);
            eprintln!("voltascope-bench: cache {path}: {status}");
            service
        }
        _ => GridService::new(base),
    }
}

/// Re-saves the service's cache to the `VOLTASCOPE_CACHE` snapshot (a
/// no-op when the variable is unset) and reports the request-stream
/// hit rate plus the lazy trace-decode count on stderr (a warm
/// table-only run reports `trace decodes 0` — CI asserts it). With
/// `VOLTASCOPE_CACHE_SLIM=1` the iteration traces are omitted from
/// the written snapshot (see [`persist::slim_from_env`]). Call once,
/// after the last sweep.
pub fn save_service(service: &GridService) {
    let Ok(path) = std::env::var(CACHE_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let slim = persist::slim_from_env();
    let stats = service.stats();
    match service.save_with(&path, slim) {
        Ok(cells) => eprintln!(
            "voltascope-bench: saved {cells} cells{} to {path} (request hit rate {:.1}%, trace decodes {})",
            if slim { " (slim)" } else { "" },
            stats.hit_rate() * 100.0,
            service.trace_decodes()
        ),
        Err(e) => eprintln!("voltascope-bench: failed to save cache {path}: {e}"),
    }
}

/// The statically heaviest cell of the full fig3 sweep — Inception-v3
/// at batch 64 on all 8 GPUs over NCCL — i.e. the sweep's makespan
/// floor. Under the default cost-ordered dispatch
/// (`VOLTASCOPE_SCHED_ORDER` unset) the scheduler starts this cell
/// first, so the longest chain runs while the cheap cells fill in
/// around it.
pub fn fig3_heaviest_cell() -> Cell {
    use voltascope::grid::{FaultScenario, Platform};
    use voltascope_comm::CommMethod;
    use voltascope_dnn::zoo::Workload;
    use voltascope_train::ScalingMode;
    Cell {
        workload: Workload::InceptionV3.into(),
        comm: CommMethod::Nccl,
        batch: 64,
        gpus: 8,
        scaling: ScalingMode::Strong,
        platform: Platform::Dgx1,
        fault: FaultScenario::Healthy,
    }
}

/// Prints `table` under `title`, as CSV when `--csv` was passed.
pub fn emit(title: &str, table: &TextTable) {
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("== {title} ==");
        println!("{}", table.render());
    }
}

/// Restricts a full workload sweep when `--quick` was passed (LeNet
/// only, for CI-speed smoke runs).
pub fn workloads() -> Vec<voltascope_dnn::zoo::Workload> {
    if std::env::args().any(|a| a == "--quick") {
        vec![voltascope_dnn::zoo::Workload::LeNet]
    } else {
        voltascope_dnn::zoo::Workload::ALL.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope::service::sched::cost_rank;

    #[test]
    fn fig3_heaviest_cell_maximizes_cost_rank_over_the_paper_grid() {
        let floor = fig3_heaviest_cell();
        let floor_rank = cost_rank(&floor);
        for cell in GridSpec::paper().cells() {
            assert!(
                cost_rank(&cell) <= floor_rank,
                "{cell:?} outranks the declared makespan floor"
            );
            // Strictly heavier than every cell that differs in the
            // rank inputs (comm method doesn't enter the rank).
            let same_rank_inputs = cell.workload == floor.workload
                && cell.batch == floor.batch
                && cell.gpus == floor.gpus;
            if !same_rank_inputs {
                assert!(cost_rank(&cell) < floor_rank, "{cell:?} ties the floor");
            }
        }
    }
}
