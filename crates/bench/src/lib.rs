//! # voltascope-bench — paper table/figure regeneration binaries
//!
//! One binary per artefact of the paper's evaluation section (see
//! DESIGN.md §3 for the index). Each binary prints the corresponding
//! table to stdout; pass `--csv` to emit CSV instead. Criterion
//! micro-benchmarks of the simulator itself live under `benches/`.
//!
//! ```text
//! cargo run --release -p voltascope-bench --bin table1
//! cargo run --release -p voltascope-bench --bin fig3_training_time
//! ...
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use voltascope::grid::Executor;
use voltascope::service::GridService;
use voltascope::Harness;
use voltascope_profile::TextTable;

/// Environment variable naming the snapshot file the sweep binaries
/// warm-start from and re-save to. Unset → plain in-memory service.
pub const CACHE_ENV: &str = "VOLTASCOPE_CACHE";

/// Builds the [`GridService`] a regeneration binary issues its sweeps
/// through. With `VOLTASCOPE_CACHE=<path>` set, the service warm-starts
/// from that snapshot (load-or-empty: a missing, stale, or corrupt file
/// just means a cold start) and the binary should call [`save_service`]
/// before exiting to persist what it computed. Status goes to stderr so
/// the golden stdout tables stay byte-identical either way.
pub fn service() -> GridService {
    let base = Harness::paper();
    match std::env::var(CACHE_ENV) {
        Ok(path) if !path.is_empty() => {
            let (service, status) = GridService::with_snapshot(base, Executor::from_env(), &path);
            eprintln!("voltascope-bench: cache {path}: {status}");
            service
        }
        _ => GridService::new(base),
    }
}

/// Re-saves the service's cache to the `VOLTASCOPE_CACHE` snapshot (a
/// no-op when the variable is unset) and reports the request-stream
/// hit rate on stderr. Call once, after the last sweep.
pub fn save_service(service: &GridService) {
    let Ok(path) = std::env::var(CACHE_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let stats = service.stats();
    match service.save(&path) {
        Ok(cells) => eprintln!(
            "voltascope-bench: saved {cells} cells to {path} (request hit rate {:.1}%)",
            stats.hit_rate() * 100.0
        ),
        Err(e) => eprintln!("voltascope-bench: failed to save cache {path}: {e}"),
    }
}

/// Prints `table` under `title`, as CSV when `--csv` was passed.
pub fn emit(title: &str, table: &TextTable) {
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("== {title} ==");
        println!("{}", table.render());
    }
}

/// Restricts a full workload sweep when `--quick` was passed (LeNet
/// only, for CI-speed smoke runs).
pub fn workloads() -> Vec<voltascope_dnn::zoo::Workload> {
    if std::env::args().any(|a| a == "--quick") {
        vec![voltascope_dnn::zoo::Workload::LeNet]
    } else {
        voltascope_dnn::zoo::Workload::ALL.to_vec()
    }
}
