//! # voltascope-bench — paper table/figure regeneration binaries
//!
//! One binary per artefact of the paper's evaluation section (see
//! DESIGN.md §3 for the index). Each binary prints the corresponding
//! table to stdout; pass `--csv` to emit CSV instead. Criterion
//! micro-benchmarks of the simulator itself live under `benches/`.
//!
//! ```text
//! cargo run --release -p voltascope-bench --bin table1
//! cargo run --release -p voltascope-bench --bin fig3_training_time
//! ...
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use voltascope_profile::TextTable;

/// Prints `table` under `title`, as CSV when `--csv` was passed.
pub fn emit(title: &str, table: &TextTable) {
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("== {title} ==");
        println!("{}", table.render());
    }
}

/// Restricts a full workload sweep when `--quick` was passed (LeNet
/// only, for CI-speed smoke runs).
pub fn workloads() -> Vec<voltascope_dnn::zoo::Workload> {
    if std::env::args().any(|a| a == "--quick") {
        vec![voltascope_dnn::zoo::Workload::LeNet]
    } else {
        voltascope_dnn::zoo::Workload::ALL.to_vec()
    }
}
