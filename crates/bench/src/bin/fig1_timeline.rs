//! Regenerates Fig. 1: the timeline of one data-parallel training
//! iteration (4 GPUs, LeNet, P2P), as an ASCII Gantt chart.
use voltascope::{experiments::structure, Harness};
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_train::ScalingMode;

fn main() {
    let h = Harness::paper();
    println!("== Fig. 1: one steady-state iteration, LeNet, 4 GPUs, P2P ==");
    println!("(F = forward, B = backward, W = weight update, A = api, H/S = h2d/setup)");
    print!("{}", structure::fig1_timeline(&h, Workload::LeNet, 4, 100));

    // `--chrome <path>` additionally writes a Chrome trace-event file
    // for interactive inspection in chrome://tracing / Perfetto.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--chrome" {
            let path = args.next().expect("--chrome needs a path");
            let model = Workload::LeNet.build();
            let report = h.epoch(&model, 16, 4, CommMethod::P2p, ScalingMode::Strong);
            let json = voltascope_profile::chrome_trace(&report.iter_trace);
            std::fs::write(&path, json).expect("write chrome trace");
            println!("chrome trace written to {path}");
        }
    }
}
