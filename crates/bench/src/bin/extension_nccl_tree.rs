//! What-if extension: NCCL 2.4 added tree collectives months after the
//! paper's study, directly targeting the small-message latency that
//! made NCCL lose on LeNet (SS V-A). Sweep the message size and find
//! the ring/tree crossover on the paper's fabric.
use std::collections::BTreeMap;

use voltascope_comm::{collective, LinkNetwork, Ring, Selection};
use voltascope_profile::TextTable;
use voltascope_sim::{Engine, TaskGraph};
use voltascope_topo::{dgx1_v100, Device};

fn main() {
    // The comparison pins the paper-era per-call costs and the Simple
    // protocol on both algorithms, so only ring-vs-tree structure
    // differs (the protocol axis is the protocol_sweep binary's job).
    let costs = collective::NcclCosts {
        tuning: voltascope_comm::TuningSpace::paper(),
        ..collective::NcclCosts::default()
    };
    let mut table = TextTable::new(["Message", "Ring allreduce", "Tree allreduce", "Winner"]);
    for bytes in [4u64 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20] {
        let run = |tree: bool| {
            let topo = dgx1_v100();
            let mut graph = TaskGraph::new();
            let net = LinkNetwork::register(&mut graph, &topo);
            let mut compute = BTreeMap::new();
            let mut ready = BTreeMap::new();
            let devs: Vec<Device> = (0..8).map(Device::gpu).collect();
            for &d in &devs {
                compute.insert(d, graph.add_resource(format!("{d}.compute"), 1));
                ready.insert(d, graph.task(format!("src@{d}")).build());
            }
            if tree {
                collective::tree_all_reduce(
                    &mut graph,
                    &net,
                    &topo,
                    &devs,
                    bytes,
                    &ready,
                    &compute,
                    &costs,
                    &Selection::PAPER,
                    "t",
                )
                .unwrap();
            } else {
                let ring = Ring::build(&topo, 8);
                collective::all_reduce(
                    &mut graph,
                    &net,
                    &topo,
                    &ring,
                    bytes,
                    &ready,
                    &compute,
                    &costs,
                    &Selection::PAPER,
                    "r",
                )
                .unwrap();
            }
            Engine::new().run(&graph).unwrap().makespan()
        };
        let ring = run(false);
        let tree = run(true);
        let human = |b: u64| {
            if b >= 1 << 20 {
                format!("{} MB", b >> 20)
            } else {
                format!("{} KB", b >> 10)
            }
        };
        table.row([
            human(bytes),
            ring.to_string(),
            tree.to_string(),
            if tree < ring { "tree" } else { "ring" }.to_string(),
        ]);
    }
    voltascope_bench::emit(
        "Extension: ring vs tree AllReduce on the DGX-1 fabric (8 GPUs)",
        &table,
    );
    println!("NCCL 2.4's trees would have fixed the small-bucket latency the");
    println!("paper blamed for NCCL's LeNet losses, while rings keep the");
    println!("bandwidth crown for AlexNet-sized gradients.");
}
