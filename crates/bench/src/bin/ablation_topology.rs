//! Topology ablation (DESIGN.md SS5): rerun AlexNet 16x4 on platform
//! variants (PCIe-only, single-lane NVLink, ideal NVSwitch, GPU
//! forwarding) to isolate which hardware property causes which effect.
//! The sweep is issued through the caching `GridService`; set
//! `VOLTASCOPE_CACHE` to warm-start from (and re-save) a snapshot.
use voltascope::experiments::ablation;
use voltascope_dnn::zoo::Workload;

fn main() {
    let service = voltascope_bench::service();
    let rows = ablation::topology_ablation_service(&service, Workload::AlexNet, 16, 4);
    voltascope_bench::emit(
        "Ablation: interconnect topology (AlexNet, batch 16, 4 GPUs)",
        &ablation::render(&rows),
    );
    voltascope_bench::save_service(&service);
}
