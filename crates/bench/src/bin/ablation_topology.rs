//! Topology ablation (DESIGN.md SS5): rerun AlexNet 16x4 on platform
//! variants (PCIe-only, single-lane NVLink, ideal NVSwitch, GPU
//! forwarding) to isolate which hardware property causes which effect.
//! The sweep is issued through the caching `GridService`.
use voltascope::service::GridService;
use voltascope::{experiments::ablation, Harness};
use voltascope_dnn::zoo::Workload;

fn main() {
    let service = GridService::new(Harness::paper());
    let rows = ablation::topology_ablation_service(&service, Workload::AlexNet, 16, 4);
    voltascope_bench::emit(
        "Ablation: interconnect topology (AlexNet, batch 16, 4 GPUs)",
        &ablation::render(&rows),
    );
}
