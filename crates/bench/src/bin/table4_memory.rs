//! Regenerates Table IV: per-GPU memory usage before and during
//! training (4-GPU parameter-server configuration).
use voltascope::{experiments::memory, Harness};

fn main() {
    let rows = memory::table4(&Harness::paper(), &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Table IV: GPU memory usage (NCCL, 4 GPUs)",
        &memory::render(&rows),
    );
}
