//! Regenerates Fig. 4: the breakdown of training time into computation
//! (FP+BP) and communication (WU) under NCCL. The sweep is issued
//! through the caching `GridService`.
use voltascope::service::GridService;
use voltascope::{experiments::fig4, Harness};

fn main() {
    let service = GridService::new(Harness::paper());
    let cells = fig4::grid_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Fig. 4: FP+BP vs WU breakdown (NCCL)",
        &fig4::render(&cells),
    );
}
