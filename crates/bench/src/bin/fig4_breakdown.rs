//! Regenerates Fig. 4: the breakdown of training time into computation
//! (FP+BP) and communication (WU) under NCCL.
use voltascope::{experiments::fig4, Harness};

fn main() {
    let cells = fig4::grid(&Harness::paper(), &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Fig. 4: FP+BP vs WU breakdown (NCCL)",
        &fig4::render(&cells),
    );
}
