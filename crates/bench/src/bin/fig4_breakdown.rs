//! Regenerates Fig. 4: the breakdown of training time into computation
//! (FP+BP) and communication (WU) under NCCL. The sweep is issued
//! through the caching `GridService`; set `VOLTASCOPE_CACHE` to
//! warm-start from (and re-save) an on-disk snapshot.
use voltascope::experiments::fig4;

fn main() {
    let service = voltascope_bench::service();
    let cells = fig4::grid_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Fig. 4: FP+BP vs WU breakdown (NCCL)",
        &fig4::render(&cells),
    );
    voltascope_bench::save_service(&service);
}
