//! Exports the Rust model-zoo networks as checked-in `.workload`
//! files (the "workloads as data" path), and verifies them.
//!
//! Default mode regenerates every zoo file under the workload
//! directory (`VOLTASCOPE_WORKLOAD_DIR` or the repository's
//! `workloads/`). `--check` instead byte-compares each file against
//! the builder-derived canonical text and exits non-zero on any drift
//! — the CI gate that keeps the data files and the Rust builders in
//! lockstep.

use std::path::PathBuf;
use std::process::ExitCode;

use voltascope::workloads::workload_dir;
use voltascope_dnn::zoo;
use voltascope_workload::WorkloadSpec;

/// The exported zoo: the five paper workloads plus the VGG-16
/// extension, with their stable file stems.
fn exports() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("lenet", WorkloadSpec::from_model(&zoo::lenet())),
        ("alexnet", WorkloadSpec::from_model(&zoo::alexnet())),
        ("googlenet", WorkloadSpec::from_model(&zoo::googlenet())),
        ("resnet", WorkloadSpec::from_model(&zoo::resnet50())),
        (
            "inception_v3",
            WorkloadSpec::from_model(&zoo::inception_v3()),
        ),
        ("vgg16", WorkloadSpec::from_model(&zoo::vgg16())),
    ]
}

/// The DAG exports: the two genuinely branchy zoo networks with their
/// real graph edges (`workload v2` with `dep` lines). They live in the
/// `dag/` subdirectory so the flat data-workload registry — and the
/// jitter salt tags derived from its filename order — stays untouched.
fn dag_exports() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("googlenet", WorkloadSpec::from_model_dag(&zoo::googlenet())),
        (
            "inception_v3",
            WorkloadSpec::from_model_dag(&zoo::inception_v3()),
        ),
    ]
}

/// Regenerates (or, in check mode, byte-compares) one export.
fn sync(path: &std::path::Path, spec: &WorkloadSpec, check: bool, drift: &mut usize) {
    let canonical = spec.to_text();
    if check {
        match std::fs::read_to_string(path) {
            Ok(on_disk) if on_disk == canonical => {
                println!("ok      {} ({} layers)", path.display(), spec.layers.len());
            }
            Ok(_) => {
                eprintln!("DRIFT   {} differs from the builder export", path.display());
                *drift += 1;
            }
            Err(e) => {
                eprintln!("MISSING {} ({e})", path.display());
                *drift += 1;
            }
        }
    } else {
        let dir = path.parent().expect("export path has a directory");
        std::fs::create_dir_all(dir).expect("create workload directory");
        std::fs::write(path, &canonical).expect("write workload file");
        println!("wrote   {} ({} layers)", path.display(), spec.layers.len());
    }
}

/// Parses every workload under `dir` (hand-written files included), so
/// a syntax error in any checked-in file fails the gate with its
/// line/column.
fn parse_all(dir: &std::path::Path, drift: &mut usize) {
    match voltascope::workloads::load_dir(dir) {
        Ok(all) => {
            for (path, spec) in &all {
                println!(
                    "parsed  {} (name `{}`, {} stages)",
                    path.display(),
                    spec.name,
                    spec.pipeline_stages
                );
            }
        }
        Err((path, e)) => {
            eprintln!("PARSE   {}: {e}", path.display());
            *drift += 1;
        }
    }
}

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");
    let dir: PathBuf = workload_dir();
    let dag_dir = dir.join("dag");
    let mut drift = 0usize;
    for (stem, spec) in exports() {
        sync(
            &dir.join(format!("{stem}.workload")),
            &spec,
            check,
            &mut drift,
        );
    }
    for (stem, spec) in dag_exports() {
        sync(
            &dag_dir.join(format!("{stem}.workload")),
            &spec,
            check,
            &mut drift,
        );
    }
    if check {
        parse_all(&dir, &mut drift);
        parse_all(&dag_dir, &mut drift);
    }
    if drift > 0 {
        eprintln!("{drift} workload file(s) out of sync; run export_workloads to regenerate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
