//! Extension workload beyond the paper's CNN roster: a GPT-2-small
//! transformer defined purely as data (`workloads/transformer_pp.workload`
//! — no Rust builder exists for it). Part one sweeps it data-parallel
//! through the same cached `GridService` path as the paper figures;
//! part two exercises its pipeline-parallel stage axis with GPipe-style
//! micro-batching, where the fill/drain bubble the paper's synchronous
//! CNNs never see becomes the dominant overhead.
use voltascope::grid::{Cell, FaultScenario, GridSpec, Platform};
use voltascope::workloads;
use voltascope_comm::CommMethod;
use voltascope_profile::TextTable;
use voltascope_train::{simulate_pipeline_epoch, PipelineConfig, ScalingMode, SystemModel};

fn main() {
    let gpt2 = workloads::find_data("GPT2-Small")
        .expect("workloads/transformer_pp.workload is checked in");
    let spec = gpt2.spec();

    // ---- Part 1: data-parallel, through the service path. ----
    let front = voltascope_bench::Front::from_env();
    let grid = GridSpec::paper()
        .workloads([gpt2])
        .batches([8])
        .gpu_counts([1, 2, 4, 8]);
    let out = front.sweep(&grid);
    let index = out.index();
    let mut dp = TextTable::new(["GPUs", "P2P iter (s)", "NCCL iter (s)", "WU share P2P (%)"]);
    for gpus in [1usize, 2, 4, 8] {
        let report = |comm| {
            index[&Cell {
                workload: gpt2.into(),
                comm,
                batch: 8,
                gpus,
                scaling: ScalingMode::Strong,
                platform: Platform::Dgx1,
                fault: FaultScenario::Healthy,
            }]
        };
        let p2p = report(CommMethod::P2p);
        let nccl = report(CommMethod::Nccl);
        dp.row([
            gpus.to_string(),
            format!("{:.3}", p2p.iter_time.as_secs_f64()),
            format!("{:.3}", nccl.iter_time.as_secs_f64()),
            format!(
                "{:.1}",
                100.0 * p2p.wu_iter.as_secs_f64() / p2p.iter_time.as_secs_f64()
            ),
        ]);
    }
    println!(
        "GPT2-Small from `workloads/transformer_pp.workload` ({} layers, {} pipeline stages), batch 8/GPU:",
        spec.layers.len(),
        spec.pipeline_stages
    );
    voltascope_bench::emit("Extension: transformer data-parallel", &dp);

    // ---- Part 2: the pipeline-parallel stage axis. ----
    let sys = SystemModel::dgx1();
    let mut pp = TextTable::new([
        "Micro-batches",
        "Iter (s)",
        "Bubble (%)",
        "Busiest stage (s)",
    ]);
    for microbatches in [1usize, 2, 4, 8, 16] {
        let cfg = PipelineConfig {
            microbatch: 1,
            microbatches,
        };
        let r = simulate_pipeline_epoch(&sys, spec, &cfg).expect("pipeline simulation");
        let busiest = r
            .stage_busy
            .iter()
            .copied()
            .max()
            .expect("at least one stage");
        pp.row([
            microbatches.to_string(),
            format!("{:.3}", r.iter_time.as_secs_f64()),
            format!("{:.1}", 100.0 * r.bubble_fraction),
            format!("{:.3}", busiest.as_secs_f64()),
        ]);
    }
    println!(
        "GPipe schedule over {} stages, micro-batch 1 (mini-batch = micro-batches):",
        spec.pipeline_stages
    );
    voltascope_bench::emit("Extension: transformer pipeline-parallel", &pp);
    voltascope_bench::save_service(front.service());
}
