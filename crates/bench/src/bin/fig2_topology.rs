//! Regenerates Fig. 2: the DGX-1 network topology (connectivity matrix
//! in `nvidia-smi topo -m` style plus a Graphviz description).
use voltascope::{experiments::structure, Harness};

fn main() {
    println!("== Fig. 2: Network topology of the DGX-1 ==");
    println!("{}", structure::fig2_topology(&Harness::paper()));
}
