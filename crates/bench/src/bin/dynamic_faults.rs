//! Dynamic-topology events: mid-epoch faults and chunk-level
//! collective contention.
//!
//! Two tables:
//!
//! 1. **Mid-epoch faults** — AlexNet over NCCL (batch 16, 8 GPUs) with
//!    GPU3's NVLink interface dying (and, separately, GPU3 starting to
//!    throttle) at 50% of the epoch, bracketed by the healthy epoch and
//!    the same fault existing from t=0. The mid-epoch rows must land
//!    strictly between their brackets: the pre-fault half ran at the
//!    healthy pace, the in-flight iteration re-routed through the
//!    engine's dynamic-event machinery, and the tail renegotiated.
//!    The sweep is issued through the caching `GridService`; set
//!    `VOLTASCOPE_CACHE` to warm-start from (and re-save) a snapshot.
//! 2. **Chunk-level contention** — two concurrent ring AllReduces
//!    (64 MiB and 1 MiB) over the 8-GPU DGX-1 ring, whole-transfer
//!    versus NCCL-style chunked link arbitration (Simple protocol,
//!    512 KiB chunks). Chunking lets the small collective interleave
//!    with the big one's chunks instead of waiting out its whole
//!    transfer, while the combined makespan (total link work) is
//!    conserved. Analytic single-collective floors (`2(N-1)/N x B` over
//!    the 25 GB/s ring bottleneck) cross-check both modes.
//!
//! Both tables' orderings are asserted before printing, so a semantics
//! regression fails the run itself, not just the golden diff.

use std::collections::BTreeMap;

use voltascope::grid::{FaultScenario, GridSpec};
use voltascope_comm::collective::{all_reduce, NcclCosts, PerGpuDone};
use voltascope_comm::{BandwidthEfficiency, CommMethod, LinkNetwork, Ring, Selection, TuningSpace};
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_sim::{Engine, SimSpan, TaskGraph};
use voltascope_topo::dgx1_v100;

/// The mid-epoch sweep: each dynamic scenario sandwiched between the
/// healthy baseline and its static (from-t=0) twin.
const SCENARIOS: [FaultScenario; 5] = [
    FaultScenario::Healthy,
    FaultScenario::MidEpochDeadNvLink,
    FaultScenario::DeadNvLink,
    FaultScenario::MidEpochStraggler,
    FaultScenario::StragglerGpu,
];

fn main() {
    let service = voltascope_bench::service();
    let spec = GridSpec::paper()
        .workloads([Workload::AlexNet])
        .comms([CommMethod::Nccl])
        .batches([16])
        .gpu_counts([8])
        .faults(SCENARIOS);
    let out = service.sweep(&spec);
    let epoch_of = |f: FaultScenario| -> f64 {
        out.iter()
            .find(|(c, _)| c.fault == f)
            .expect("swept scenario")
            .1
            .epoch_time
            .as_secs_f64()
    };
    let healthy = epoch_of(FaultScenario::Healthy);
    for (mid, from_start) in [
        (FaultScenario::MidEpochDeadNvLink, FaultScenario::DeadNvLink),
        (
            FaultScenario::MidEpochStraggler,
            FaultScenario::StragglerGpu,
        ),
    ] {
        let (m, s) = (epoch_of(mid), epoch_of(from_start));
        assert!(
            healthy < m && m < s,
            "{} must land strictly between healthy ({healthy:.3}s) and {} ({s:.3}s), got {m:.3}s",
            mid.name(),
            from_start.name(),
        );
    }
    let mut faults = TextTable::new(["Scenario", "Epoch (s)", "d vs healthy (%)"]);
    for f in SCENARIOS {
        let e = epoch_of(f);
        faults.row([
            f.name().to_string(),
            format!("{e:.2}"),
            format!("{:+.2}", 100.0 * (e - healthy) / healthy),
        ]);
    }
    voltascope_bench::emit(
        "Mid-epoch faults: AlexNet / NCCL (batch 16, 8 GPUs), fault at 50% vs from t=0",
        &faults,
    );
    voltascope_bench::emit(
        "Chunk-level contention: concurrent 64 MiB + 1 MiB ring AllReduce (8 GPUs)",
        &contention(),
    );
    voltascope_bench::save_service(&service);
}

/// Bare-link NCCL costs: zero fixed overheads and unit efficiency so
/// the engine times are directly comparable to the analytic
/// `2(N-1)/N x B / bw` floors.
fn bare_costs(chunking: bool) -> NcclCosts {
    NcclCosts {
        kernel_overhead: SimSpan::ZERO,
        epoch_setup: SimSpan::ZERO,
        step_overhead: SimSpan::ZERO,
        bandwidth_efficiency: BandwidthEfficiency::new(1.0).expect("unit efficiency"),
        group_call_overhead: SimSpan::ZERO,
        tuning: TuningSpace::paper(),
        chunking,
    }
}

const GPUS: usize = 8;
const BIG_BYTES: u64 = 64 << 20;
const SMALL_BYTES: u64 = 1 << 20;
/// The 8-GPU DGX-1 NVLink ring bottleneck: a single 25 GB/s lane.
const BOTTLENECK_BYTES_PER_SEC: f64 = 25.0e9;

/// Analytic solo floor of a ring AllReduce of `bytes` per rank: every
/// link carries `2(N-1)/N x bytes`, gated by the bottleneck lane.
fn solo_floor_s(bytes: u64) -> f64 {
    2.0 * (GPUS as f64 - 1.0) / GPUS as f64 * bytes as f64 / BOTTLENECK_BYTES_PER_SEC
}

/// Emits both collectives (big first, so FIFO link arbitration makes
/// the small one the victim), runs the engine, and returns `(big
/// finish, small finish, makespan)` in seconds.
fn run_contention(chunking: bool) -> (f64, f64, f64) {
    let topo = dgx1_v100();
    let mut graph = TaskGraph::new();
    let net = LinkNetwork::register(&mut graph, &topo);
    let mut compute = BTreeMap::new();
    let mut ready: PerGpuDone = BTreeMap::new();
    for g in 0..GPUS {
        let d = voltascope_topo::Device::gpu(g as u8);
        let r = graph.add_resource(format!("{d}.compute"), 1);
        compute.insert(d, r);
        ready.insert(d, graph.task(format!("bp@{d}")).category("bp").build());
    }
    let ring = Ring::build(&topo, GPUS);
    let costs = bare_costs(chunking);
    let big = all_reduce(
        &mut graph,
        &net,
        &topo,
        &ring,
        BIG_BYTES,
        &ready,
        &compute,
        &costs,
        &Selection::PAPER,
        "big",
    )
    .expect("big all-reduce emits");
    let small = all_reduce(
        &mut graph,
        &net,
        &topo,
        &ring,
        SMALL_BYTES,
        &ready,
        &compute,
        &costs,
        &Selection::PAPER,
        "small",
    )
    .expect("small all-reduce emits");
    let s = Engine::new().run(&graph).expect("contention graph runs");
    let finish = |done: &PerGpuDone| {
        done.values()
            .map(|&t| s.finish_time(t))
            .max()
            .expect("non-empty collective")
            .as_secs_f64()
    };
    (finish(&big), finish(&small), s.makespan().as_secs_f64())
}

fn contention() -> TextTable {
    let (big_whole, small_whole, mk_whole) = run_contention(false);
    let (big_chunked, small_chunked, mk_chunked) = run_contention(true);
    let (big_floor, small_floor) = (solo_floor_s(BIG_BYTES), solo_floor_s(SMALL_BYTES));
    let combined_floor = big_floor + small_floor;

    // Whole-transfer arbitration serialises the victim behind the
    // aggressor's entire transfer on the shared bottleneck hop.
    assert!(
        small_whole >= 0.99 * combined_floor,
        "whole-transfer small finished at {small_whole}s, below the serialised floor {combined_floor}s"
    );
    // Chunked arbitration must beat serialisation strictly (>25%).
    assert!(
        small_chunked < 0.75 * small_whole,
        "chunked small {small_chunked}s not strictly faster than serialised {small_whole}s"
    );
    // ...but never its own physics.
    assert!(
        small_chunked >= 0.99 * small_floor,
        "chunked small {small_chunked}s beat its analytic floor {small_floor}s"
    );
    // Link work is conserved: chunking reorders, it does not shrink.
    for mk in [mk_whole, mk_chunked] {
        assert!(
            mk >= 0.99 * combined_floor,
            "makespan {mk}s below the combined analytic floor {combined_floor}s"
        );
    }
    // (sub-microsecond slack: integer chunk splits round each chunk's
    // transfer to whole nanoseconds)
    assert!(
        (mk_chunked - mk_whole).abs() <= 1e-6 * mk_whole + 1e-6,
        "chunking moved the combined makespan: {mk_chunked}s vs {mk_whole}s"
    );

    let ms = |s: f64| format!("{:.3}", 1e3 * s);
    let mut table = TextTable::new([
        "Arbitration",
        "Big done (ms)",
        "Small done (ms)",
        "Makespan (ms)",
    ]);
    table.row([
        "whole-transfer".to_string(),
        ms(big_whole),
        ms(small_whole),
        ms(mk_whole),
    ]);
    table.row([
        "chunked (Simple, 512 KiB)".to_string(),
        ms(big_chunked),
        ms(small_chunked),
        ms(mk_chunked),
    ]);
    table.row([
        "analytic solo floor".to_string(),
        ms(big_floor),
        ms(small_floor),
        ms(combined_floor),
    ]);
    table
}
