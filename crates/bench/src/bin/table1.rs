//! Regenerates Table I: description of the five networks.
use voltascope::experiments::structure;

fn main() {
    let stats = structure::table1(&voltascope_bench::workloads());
    voltascope_bench::emit(
        "Table I: Description of the networks",
        &structure::render_table1(&stats),
    );
}
