//! Generational extension: rerun the paper's experiment on the
//! Pascal-era DGX-1 (P100, NVLink 1.0) that Gawande et al. studied
//! (SS III) — how much of the Volta system's advantage is compute
//! (tensor cores, more SMs) vs fabric (25 vs 20 GB/s links)?
use voltascope::Harness;
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_gpu::{GpuSpec, KernelCostModel};
use voltascope_profile::TextTable;
use voltascope_topo::dgx1_p100;
use voltascope_train::ScalingMode;

fn main() {
    let volta = Harness::paper();
    let mut pascal = volta.clone();
    pascal.sys.topo = dgx1_p100();
    pascal.sys.gpu = GpuSpec::tesla_p100();
    pascal.sys.kernels = KernelCostModel {
        max_efficiency: volta.sys.kernels.max_efficiency,
        knee_flops: volta.sys.kernels.knee_flops,
        ..KernelCostModel::new(&pascal.sys.gpu)
    };

    let mut table = TextTable::new([
        "Workload",
        "Method",
        "GPUs",
        "DGX-1V (s)",
        "DGX-1P (s)",
        "Volta speedup",
    ]);
    for workload in [Workload::LeNet, Workload::AlexNet, Workload::ResNet] {
        let model = workload.build();
        for comm in CommMethod::ALL {
            for gpus in [1usize, 8] {
                let v = volta
                    .epoch(&model, 16, gpus, comm, ScalingMode::Strong)
                    .epoch_time
                    .as_secs_f64();
                let p = pascal
                    .epoch(&model, 16, gpus, comm, ScalingMode::Strong)
                    .epoch_time
                    .as_secs_f64();
                table.row([
                    workload.name().to_string(),
                    comm.name().to_string(),
                    gpus.to_string(),
                    format!("{v:.1}"),
                    format!("{p:.1}"),
                    format!("{:.2}x", p / v),
                ]);
            }
        }
    }
    voltascope_bench::emit("Extension: Volta vs Pascal DGX-1 (batch 16)", &table);
}
