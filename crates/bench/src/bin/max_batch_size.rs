//! Regenerates the SS V-D capacity result: the largest per-GPU batch
//! size each workload can train with on a 16 GB V100.
use voltascope::{experiments::memory, Harness};

fn main() {
    let rows = memory::max_batch(&Harness::paper(), &voltascope_bench::workloads());
    voltascope_bench::emit(
        "SS V-D: Maximum trainable batch size per GPU",
        &memory::render_max_batch(&rows),
    );
}
