//! Regenerates Table II: NCCL overhead relative to P2P on one GPU.
//! The sweep is issued through the caching `GridService`; set
//! `VOLTASCOPE_CACHE` to warm-start from (and re-save) a snapshot.
use voltascope::experiments::table2;

fn main() {
    let service = voltascope_bench::service();
    let rows = table2::rows_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Table II: NCCL overhead vs P2P, single GPU",
        &table2::render(&rows),
    );
    voltascope_bench::save_service(&service);
}
