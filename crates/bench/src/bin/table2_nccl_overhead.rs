//! Regenerates Table II: NCCL overhead relative to P2P on one GPU.
//! The sweep is issued through the caching `GridService`.
use voltascope::service::GridService;
use voltascope::{experiments::table2, Harness};

fn main() {
    let service = GridService::new(Harness::paper());
    let rows = table2::rows_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Table II: NCCL overhead vs P2P, single GPU",
        &table2::render(&rows),
    );
}
