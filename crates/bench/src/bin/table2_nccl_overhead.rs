//! Regenerates Table II: NCCL overhead relative to P2P on one GPU.
use voltascope::{experiments::table2, Harness};

fn main() {
    let rows = table2::rows(&Harness::paper(), &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Table II: NCCL overhead vs P2P, single GPU",
        &table2::render(&rows),
    );
}
