//! Regenerates Fig. 5: weak-scaling vs strong-scaling training time
//! (256K images per GPU under weak scaling). The sweep is issued
//! through the caching `GridService`; set `VOLTASCOPE_CACHE` to
//! warm-start from (and re-save) an on-disk snapshot.
use voltascope::experiments::fig5;

fn main() {
    let service = voltascope_bench::service();
    let cells = fig5::grid_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit("Fig. 5: Weak vs strong scaling", &fig5::render(&cells));
    voltascope_bench::save_service(&service);
}
