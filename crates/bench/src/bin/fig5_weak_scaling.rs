//! Regenerates Fig. 5: weak-scaling vs strong-scaling training time
//! (256K images per GPU under weak scaling).
use voltascope::{experiments::fig5, Harness};

fn main() {
    let cells = fig5::grid(&Harness::paper(), &voltascope_bench::workloads());
    voltascope_bench::emit("Fig. 5: Weak vs strong scaling", &fig5::render(&cells));
}
