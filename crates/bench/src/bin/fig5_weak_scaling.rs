//! Regenerates Fig. 5: weak-scaling vs strong-scaling training time
//! (256K images per GPU under weak scaling). The sweep is issued
//! through the caching `GridService`.
use voltascope::service::GridService;
use voltascope::{experiments::fig5, Harness};

fn main() {
    let service = GridService::new(Harness::paper());
    let cells = fig5::grid_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit("Fig. 5: Weak vs strong scaling", &fig5::render(&cells));
}
