//! Per-GPU idle-time analysis (SS V-A: "some of the GPUs become idle
//! during DNN training" because of the asymmetric interconnect). The
//! sweep is issued through the caching `GridService`; set
//! `VOLTASCOPE_CACHE` to warm-start from (and re-save) a snapshot.
use voltascope::experiments::idle;
use voltascope::grid::{Cell, GridSpec};
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_train::ScalingMode;

fn main() {
    let service = voltascope_bench::service();
    // One grid over every section, computed in parallel up front...
    let spec = GridSpec::paper()
        .workloads([Workload::AlexNet])
        .batches([16])
        .gpu_counts([4, 8]);
    let out = idle::grid_service(&service, &spec);
    let index = out.index();
    // ...then printed in the report's (gpus, comm) section order.
    for (workload, gpus) in [(Workload::AlexNet, 4usize), (Workload::AlexNet, 8)] {
        for comm in CommMethod::ALL {
            let cell = Cell {
                workload: workload.into(),
                comm,
                batch: 16,
                gpus,
                scaling: ScalingMode::Strong,
                platform: voltascope::grid::Platform::Dgx1,
                fault: voltascope::grid::FaultScenario::Healthy,
            };
            let rows = index[&cell];
            println!(
                "== {} / {} / {} GPUs ==",
                workload.name(),
                comm.name(),
                gpus
            );
            println!("{}", idle::render(rows).render());
        }
    }
    voltascope_bench::save_service(&service);
}
