//! Per-GPU idle-time analysis (SS V-A: "some of the GPUs become idle
//! during DNN training" because of the asymmetric interconnect).
use voltascope::{experiments::idle, Harness};
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;

fn main() {
    let h = Harness::paper();
    for (workload, gpus) in [(Workload::AlexNet, 4usize), (Workload::AlexNet, 8)] {
        for comm in CommMethod::ALL {
            let rows = idle::per_gpu_idle(&h, workload, 16, gpus, comm);
            println!("== {} / {} / {} GPUs ==", workload.name(), comm.name(), gpus);
            println!("{}", idle::render(&rows).render());
        }
    }
}
