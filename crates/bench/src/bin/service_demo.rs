//! Demonstrates the caching sweep service (`voltascope::service`):
//! replays a mixed stream of overlapping sweep requests — the kind an
//! interactive exploration session produces — and reports, per
//! request, how many cells were answered from cache versus computed.
//!
//! The request stream is fixed and the requests are issued
//! sequentially (each one claims its missing cells before the next
//! request runs), so the printed table is deterministic for any
//! `VOLTASCOPE_THREADS` setting: only the intra-request cell
//! computations are parallel, never the claim accounting. With
//! `VOLTASCOPE_ASYNC=1` each request travels as a ticket through the
//! prioritised scheduler's worker pool instead — same reports, same
//! statistics, byte-identical table.
use voltascope::grid::GridSpec;
use voltascope::service::GridService;
use voltascope::Harness;
use voltascope_bench::Front;
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;

fn main() {
    // Deliberately NOT wired to `VOLTASCOPE_CACHE`: the printed
    // per-request hit/computed accounting *is* this demo's output, and
    // a warm-started cache would turn every row into a hit and change
    // the pinned golden. The cold in-memory stream is the artefact.
    let front = Front::over(GridService::new(Harness::paper()));
    // A plausible exploration session: start narrow, widen the batch
    // axis, revisit, then pivot to another workload that shares the
    // communication sweep.
    let stream: Vec<(&str, GridSpec)> = vec![
        (
            "lenet b16, all gpus",
            GridSpec::paper().workloads([Workload::LeNet]).batches([16]),
        ),
        (
            "lenet all batches",
            GridSpec::paper().workloads([Workload::LeNet]),
        ),
        (
            "lenet b16 again",
            GridSpec::paper().workloads([Workload::LeNet]).batches([16]),
        ),
        (
            "lenet nccl only",
            GridSpec::paper()
                .workloads([Workload::LeNet])
                .comms([CommMethod::Nccl]),
        ),
        (
            "alexnet b16, 1-2 gpus",
            GridSpec::paper()
                .workloads([Workload::AlexNet])
                .batches([16])
                .gpu_counts([1, 2]),
        ),
        (
            "lenet + alexnet b16",
            GridSpec::paper()
                .workloads([Workload::LeNet, Workload::AlexNet])
                .batches([16]),
        ),
    ];

    let mut table = TextTable::new([
        "Request",
        "Cells",
        "Hits",
        "Computed",
        "Cumulative hit rate",
    ]);
    let mut prev = front.service().stats();
    for (name, spec) in &stream {
        let out = front.sweep(spec);
        let now = front.service().stats();
        table.row([
            name.to_string(),
            out.len().to_string(),
            (now.hits + now.coalesced - prev.hits - prev.coalesced).to_string(),
            (now.computed - prev.computed).to_string(),
            format!("{:.1}%", 100.0 * now.hit_rate()),
        ]);
        prev = now;
    }
    let stats = front.service().stats();
    table.row([
        "TOTAL".to_string(),
        stats.cells.to_string(),
        (stats.hits + stats.coalesced).to_string(),
        stats.computed.to_string(),
        format!("{:.1}%", 100.0 * stats.hit_rate()),
    ]);
    voltascope_bench::emit("Grid service: cached sweep request stream", &table);
}
