//! BP/WU overlap ablation (DESIGN.md SS5): how much communication MXNet's
//! per-layer pipelining could hide if it overlapped perfectly.
use voltascope::Harness;
use voltascope_comm::CommMethod;
use voltascope_profile::TextTable;
use voltascope_train::ScalingMode;

fn main() {
    let base = Harness::paper();
    let mut overlapped = base.clone();
    overlapped.sys.bp_wu_overlap = true;
    let mut table = TextTable::new([
        "Workload",
        "Method",
        "GPUs",
        "No overlap (s)",
        "Full overlap (s)",
        "Hidden (%)",
    ]);
    for wl in voltascope_bench::workloads() {
        let model = wl.build();
        for comm in CommMethod::ALL {
            for gpus in [2usize, 4, 8] {
                let a = base
                    .epoch(&model, 16, gpus, comm, ScalingMode::Strong)
                    .epoch_time
                    .as_secs_f64();
                let b = overlapped
                    .epoch(&model, 16, gpus, comm, ScalingMode::Strong)
                    .epoch_time
                    .as_secs_f64();
                table.row([
                    wl.name().to_string(),
                    comm.name().to_string(),
                    gpus.to_string(),
                    format!("{a:.1}"),
                    format!("{b:.1}"),
                    format!("{:.1}", 100.0 * (a - b) / a),
                ]);
            }
        }
    }
    voltascope_bench::emit("Ablation: BP/WU overlap", &table);
}
