//! NCCL protocol/algorithm crossover sweep: the cost of every
//! (algorithm, protocol) combination — each at its best channel count
//! — per message size, on the healthy DGX-1 fabric, a PCIe-only box,
//! and a DGX-1 with GPU3's NVLink interface dead. The Winner column is
//! the auto-tuner's pick over the full modern candidate space, with
//! its bus bandwidth `2(N-1)/N x S / t` (the convention of NCCL's own
//! tests, arXiv:2507.07117). The trends to check against the
//! Demystifying-NCCL measurements (arXiv:2507.04786): LL wins small
//! messages, Simple wins large, and the tree beats the ring below a
//! size threshold before rings take the bandwidth regime.

use voltascope_comm::{collective, tuner, Algorithm, Protocol, Ring, Selection, TuningSpace};
use voltascope_profile::TextTable;
use voltascope_topo::{dgx1_v100, pcie_only, Device, FaultSpec, Topology};

const SIZES: [u64; 5] = [4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20];
const CHANNELS: [u32; 3] = [1, 2, 4];

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

/// The sweep pins the modern tuning space explicitly, so these tables
/// are stable under `VOLTASCOPE_NCCL_PROTO`; only the "tuner default"
/// section below follows the environment.
fn sweep_costs() -> collective::NcclCosts {
    collective::NcclCosts {
        tuning: TuningSpace::modern(),
        ..collective::NcclCosts::default()
    }
}

/// Best predicted AllReduce cost over the channel axis for one
/// (algorithm, protocol) cell.
fn best_over_channels(
    topo: &Topology,
    ring: &Ring,
    bytes: u64,
    costs: &collective::NcclCosts,
    algorithm: Algorithm,
    protocol: Protocol,
) -> voltascope_sim::SimSpan {
    CHANNELS
        .iter()
        .map(|&channels| {
            let sel = Selection {
                algorithm,
                protocol,
                channels,
            };
            tuner::predict_all_reduce(topo, ring, bytes, costs, &sel)
                .unwrap_or_else(|e| panic!("{e}"))
        })
        .min()
        .expect("channel axis is non-empty")
}

fn sweep(title: &str, topo: &Topology) {
    let costs = sweep_costs();
    let ring = Ring::build(topo, 8);
    let n = ring.len() as f64;
    let mut table = TextTable::new([
        "Message",
        "ring/LL",
        "ring/LL128",
        "ring/Simple",
        "tree/LL",
        "tree/LL128",
        "tree/Simple",
        "Winner",
        "BusBW",
    ]);
    for bytes in SIZES {
        let mut cells = vec![human(bytes)];
        for algorithm in Algorithm::ALL {
            for protocol in Protocol::ALL {
                cells.push(
                    best_over_channels(topo, &ring, bytes, &costs, algorithm, protocol).to_string(),
                );
            }
        }
        let winner =
            tuner::choose_all_reduce(topo, &ring, bytes, &costs).unwrap_or_else(|e| panic!("{e}"));
        let t = tuner::predict_all_reduce(topo, &ring, bytes, &costs, &winner)
            .unwrap_or_else(|e| panic!("{e}"));
        let busbw = 2.0 * (n - 1.0) / n * bytes as f64 / t.as_secs_f64() / 1e9;
        cells.push(winner.to_string());
        cells.push(format!("{busbw:.1} GB/s"));
        table.row(cells);
    }
    voltascope_bench::emit(title, &table);
}

fn main() {
    let healthy = dgx1_v100();
    sweep(
        "NCCL protocol/algorithm sweep: healthy DGX-1 (8x V100, NVLink)",
        &healthy,
    );
    sweep(
        "NCCL protocol/algorithm sweep: PCIe-only box (8 GPUs, no NVLink)",
        &pcie_only(8),
    );
    sweep(
        "NCCL protocol/algorithm sweep: DGX-1, GPU3 NVLink interface dead",
        &healthy.apply(&FaultSpec::new().kill_nvlinks_of(Device::gpu(3))),
    );

    // The environment-controlled default: the paper-calibrated
    // singleton unless VOLTASCOPE_NCCL_PROTO opens or pins part of the
    // modern space. CI proves the override changes this section.
    let costs = collective::NcclCosts::default();
    let ring = Ring::build(&healthy, 8);
    let mut table = TextTable::new(["Message", "AllReduce pick", "Broadcast pick"]);
    for bytes in SIZES {
        let ar = tuner::choose_all_reduce(&healthy, &ring, bytes, &costs)
            .unwrap_or_else(|e| panic!("{e}"));
        let bc = tuner::choose_broadcast(&healthy, &ring, bytes, &costs)
            .unwrap_or_else(|e| panic!("{e}"));
        table.row([human(bytes), ar.to_string(), bc.to_string()]);
    }
    voltascope_bench::emit(
        "Tuner default selections on the healthy DGX-1 (VOLTASCOPE_NCCL_PROTO)",
        &table,
    );

    println!("Bus bandwidth follows the 2(N-1)/N x S / t convention of NCCL's");
    println!("own tests (arXiv:2507.07117). Calibration: the healthy plateau is");
    println!("the sustained fraction of one NVLink lane (0.85 x 25 GB/s = 21.2");
    println!("GB/s); the PCIe-only and dead-interface plateaus land near 7 GB/s");
    println!("because every host-bounced ring hop store-and-forwards two 12 GB/s");
    println!("PCIe legs — the same sub-10 GB/s regime NCCL's published PCIe ring");
    println!("measurements plateau in. The crossover shape — LL at a few KB,");
    println!("LL128 into the tens of KB, trees below a ~1 MB threshold, Simple");
    println!("rings for bulk — follows arXiv:2507.04786; and on the faulted");
    println!("graph the tuner renegotiates, handing bulk sizes to the tree,");
    println!("which crosses the dead GPU's PCIe bottleneck via fewer edges than");
    println!("the ring's double crossing.");
}
