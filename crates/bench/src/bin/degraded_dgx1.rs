//! Degraded-DGX-1 fault-injection sweep: epoch-time and idle-time
//! deltas for every network under a dead GPU3 NVLink interface and a
//! 1.5x straggler GPU3, versus the healthy baseline (batch 16, 8
//! GPUs). The sweep is issued through the caching `GridService`; set
//! `VOLTASCOPE_CACHE` to warm-start from (and re-save) a snapshot.
use voltascope::experiments::faults;

fn main() {
    let service = voltascope_bench::service();
    let rows = faults::degraded_grid_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit(
        "Degraded DGX-1: fault-injection scenarios (batch 16, 8 GPUs)",
        &faults::render(&rows),
    );
    voltascope_bench::save_service(&service);
}
