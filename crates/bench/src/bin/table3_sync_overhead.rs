//! Regenerates Table III: cudaStreamSynchronize time share for LeNet.
use voltascope::{experiments::table3, Harness};

fn main() {
    let rows = table3::rows(&Harness::paper());
    voltascope_bench::emit(
        "Table III: cudaStreamSynchronize share, LeNet",
        &table3::render(&rows),
    );
}
