//! Regenerates Table III: cudaStreamSynchronize time share for LeNet.
//! The sweep is issued through the caching `GridService`.
use voltascope::service::GridService;
use voltascope::{experiments::table3, Harness};

fn main() {
    let service = GridService::new(Harness::paper());
    let rows = table3::rows_service(&service);
    voltascope_bench::emit(
        "Table III: cudaStreamSynchronize share, LeNet",
        &table3::render(&rows),
    );
}
