//! Regenerates Table III: cudaStreamSynchronize time share for LeNet.
//! The sweep is issued through the caching `GridService`; set
//! `VOLTASCOPE_CACHE` to warm-start from (and re-save) a snapshot.
use voltascope::experiments::table3;

fn main() {
    let service = voltascope_bench::service();
    let rows = table3::rows_service(&service);
    voltascope_bench::emit(
        "Table III: cudaStreamSynchronize share, LeNet",
        &table3::render(&rows),
    );
    voltascope_bench::save_service(&service);
}
