//! Gradient-bucket fusion ablation (DESIGN.md SS5): sweep the fusion
//! threshold and watch the per-key-overhead vs pipelining tradeoff —
//! the optimisation later popularised by Horovod/DDP, applied to the
//! paper's platform.
use voltascope::Harness;
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_train::{DatasetSpec, ScalingMode, TrainConfig};

fn main() {
    let h = Harness::paper();
    let mut table = TextTable::new([
        "Workload",
        "Method",
        "Fusion",
        "Buckets",
        "WU/iter",
        "Epoch (s)",
    ]);
    for workload in [Workload::ResNet, Workload::AlexNet] {
        let model = workload.build();
        for comm in CommMethod::ALL {
            for (label, fusion) in [
                ("per-layer", 0u64),
                ("1 MB", 1 << 20),
                ("16 MB", 16 << 20),
                ("single", u64::MAX / 2),
            ] {
                let cfg = TrainConfig {
                    batch_per_gpu: 16,
                    gpu_count: 8,
                    comm,
                    scaling: ScalingMode::Strong,
                    dataset: DatasetSpec::imagenet_256k(),
                    bucket_fusion_bytes: fusion,
                };
                let r = h.epoch_cfg(&model, &cfg);
                let buckets = if fusion == 0 {
                    model.gradient_buckets().len()
                } else {
                    let mut acc = 0u64;
                    let mut count = 0usize;
                    for b in model.gradient_buckets() {
                        acc += b.bytes;
                        if acc >= fusion.max(1) {
                            count += 1;
                            acc = 0;
                        }
                    }
                    count.max(1)
                };
                table.row([
                    workload.name().to_string(),
                    comm.name().to_string(),
                    label.to_string(),
                    buckets.to_string(),
                    r.wu_iter.to_string(),
                    format!("{:.1}", r.epoch_time.as_secs_f64()),
                ]);
            }
        }
    }
    voltascope_bench::emit(
        "Ablation: gradient-bucket fusion (batch 16, 8 GPUs)",
        &table,
    );
}
