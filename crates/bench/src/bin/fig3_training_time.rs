//! Regenerates Fig. 3: training time per epoch for five workloads under
//! P2P and NCCL communication, batch sizes 16/32/64, 1/2/4/8 GPUs
//! (mean +/- stddev of 5 repetitions, strong scaling on 256K images).
//! The sweep is issued through the caching `GridService`, which is
//! byte-identical to the direct grid path; set `VOLTASCOPE_CACHE` to
//! warm-start from (and re-save) an on-disk snapshot.
use voltascope::experiments::fig3;

fn main() {
    let service = voltascope_bench::service();
    let cells = fig3::grid_service(&service, &voltascope_bench::workloads());
    voltascope_bench::emit("Fig. 3: Training time per epoch (s)", &fig3::render(&cells));
    voltascope_bench::save_service(&service);
}
