//! Regenerates Fig. 3: training time per epoch for five workloads under
//! P2P and NCCL communication, batch sizes 16/32/64, 1/2/4/8 GPUs
//! (mean +/- stddev of 5 repetitions, strong scaling on 256K images).
//! The sweep is issued through the caching `GridService`, which is
//! byte-identical to the direct grid path; set `VOLTASCOPE_CACHE` to
//! warm-start from (and re-save) an on-disk snapshot, and
//! `VOLTASCOPE_ASYNC=1` to route the sweep through the prioritised
//! async scheduler (tickets + worker pool) instead of the blocking
//! path — the output is byte-identical either way.
use voltascope::experiments::fig3;

fn main() {
    let front = voltascope_bench::Front::from_env();
    let workloads = voltascope_bench::workloads();
    let out = front.sweep(&fig3::spec(&workloads));
    let cells = fig3::rows_from(front.service().base(), &out);
    voltascope_bench::emit("Fig. 3: Training time per epoch (s)", &fig3::render(&cells));
    voltascope_bench::save_service(front.service());
}
