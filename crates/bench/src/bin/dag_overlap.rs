//! Quantifies task-DAG branch overlap on the branchy zoo networks.
//!
//! The `workloads/dag/` exports carry the real graph edges of
//! GoogLeNet and Inception-v3 (`workload v2` with `dep` lines).
//! Lowered with those edges, independent inception branches become
//! parallel kernel chains; on a system model with two compute streams
//! per GPU they genuinely overlap. This benchmark times each DAG
//! export against its *linear twin* — the same spec with every `dep`
//! erased, which lowers to the classic serial chain — at the same
//! stream capacity, so the speedup isolates branch overlap. The
//! reported critical chain is the schedule's blocking chain through
//! the steady-state iteration: with branches overlapped it threads
//! through only one side of each inception block.
//!
//! Deterministic and environment-insensitive: no grid service, no
//! jitter, no thread pool — `VOLTASCOPE_THREADS` must not change a
//! byte of the output.

use voltascope::calibration::dgx1_system;
use voltascope::workloads::{load_dir, workload_dir};
use voltascope_comm::CommMethod;
use voltascope_profile::TextTable;
use voltascope_train::{simulate_epoch_lowered, TrainConfig};
use voltascope_workload::lower;

const BATCH: usize = 32;

fn main() {
    let dag_dir = workload_dir().join("dag");
    let specs = load_dir(&dag_dir).unwrap_or_else(|(path, e)| panic!("{}: {e}", path.display()));
    assert!(
        !specs.is_empty(),
        "no .workload files under {} — run export_workloads first",
        dag_dir.display()
    );

    // Two compute streams per GPU: enough for the inception branches
    // to pair up, while the calibrated single-stream model stays the
    // default everywhere else.
    let mut sys = dgx1_system();
    sys.compute_streams = 2;

    let mut table = TextTable::new([
        "Workload",
        "GPUs",
        "Comm",
        "Linear iter (s)",
        "DAG iter (s)",
        "Speedup",
    ]);
    let mut chains: Vec<(String, Vec<String>)> = Vec::new();

    for (_, spec) in &specs {
        let mut linear = spec.clone();
        for l in &mut linear.layers {
            l.deps = None;
        }
        let dag = lower(spec, BATCH).expect("lower DAG spec");
        let lin = lower(&linear, BATCH).expect("lower linear twin");
        assert!(dag.dag.is_some(), "{} carries no dep edges", spec.name);

        for (gpus, comm) in [(1usize, CommMethod::P2p), (4, CommMethod::Nccl)] {
            let cfg = TrainConfig::strong(BATCH, gpus, comm);
            let d = simulate_epoch_lowered(&sys, &dag, &cfg);
            let l = simulate_epoch_lowered(&sys, &lin, &cfg);
            table.row([
                spec.name.clone(),
                gpus.to_string(),
                comm.name().to_string(),
                format!("{:.4}", l.iter_time.as_secs_f64()),
                format!("{:.4}", d.iter_time.as_secs_f64()),
                format!(
                    "{:.3}x",
                    l.iter_time.as_secs_f64() / d.iter_time.as_secs_f64()
                ),
            ]);
            if gpus == 1 {
                chains.push((spec.name.clone(), d.critical_chain));
            }
        }
    }

    println!(
        "DAG exports from `workloads/dag/` vs their dep-erased linear twins, \
         batch {BATCH}/GPU, {} compute streams:",
        sys.compute_streams
    );
    voltascope_bench::emit("DAG overlap: branchy networks", &table);

    for (name, chain) in &chains {
        let head: Vec<&str> = chain.iter().take(6).map(String::as_str).collect();
        println!(
            "critical chain {name} ({} tasks): {} ...",
            chain.len(),
            head.join(" -> ")
        );
    }
}
