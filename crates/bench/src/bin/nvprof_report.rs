//! Prints a full simulated-nvprof summary for one configuration
//! (SS IV-B tooling demonstration): GPU activities and API calls of a
//! steady-state iteration.
use voltascope::Harness;
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::ProfileSummary;
use voltascope_train::ScalingMode;

fn main() {
    let h = Harness::paper();
    let model = Workload::AlexNet.build();
    let report = h.epoch(&model, 16, 4, CommMethod::Nccl, ScalingMode::Strong);
    println!("AlexNet, batch 16/GPU, 4 GPUs, NCCL - one steady-state iteration");
    println!("{}", ProfileSummary::from_trace(&report.iter_trace));
}
