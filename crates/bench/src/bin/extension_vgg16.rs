//! Extension workload beyond the paper's roster: VGG-16 (138M
//! parameters, 2.3x AlexNet) pushes the communication-heavy end of the
//! workload spectrum further — where do the paper's P2P/NCCL
//! conclusions go as weights keep growing?
use voltascope::Harness;
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::vgg16;
use voltascope_profile::TextTable;
use voltascope_train::ScalingMode;

fn main() {
    let h = Harness::paper();
    let model = vgg16();
    let mut table = TextTable::new(["GPUs", "P2P (s)", "NCCL (s)", "WU share P2P (%)"]);
    for gpus in [1usize, 2, 4, 8] {
        let p2p = h.epoch(&model, 16, gpus, CommMethod::P2p, ScalingMode::Strong);
        let nccl = h.epoch(&model, 16, gpus, CommMethod::Nccl, ScalingMode::Strong);
        table.row([
            gpus.to_string(),
            format!("{:.1}", p2p.epoch_time.as_secs_f64()),
            format!("{:.1}", nccl.epoch_time.as_secs_f64()),
            format!(
                "{:.1}",
                100.0 * p2p.wu_iter.as_secs_f64() / p2p.iter_time.as_secs_f64()
            ),
        ]);
    }
    println!(
        "VGG-16 ({:.0}M params), batch 16/GPU, strong scaling:",
        model.param_count() as f64 / 1e6
    );
    voltascope_bench::emit("Extension: VGG-16 training time", &table);
}
