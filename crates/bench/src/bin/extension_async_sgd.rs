//! Extension study: the delayed-gradient problem of SS II-B, measured
//! with real numerics. Synchronous data-parallel SGD and an
//! asynchronous parameter server process the same gradient budget on
//! the same data; staleness costs the async run loss progress.
use voltascope_dnn::{zoo, Shape};
use voltascope_profile::TextTable;
use voltascope_train::{AsyncParameterServer, DataParallel, Sgd, SyntheticDataset};

fn main() {
    let model = zoo::lenet();
    let data = SyntheticDataset::new(Shape::new([1, 1, 28, 28]), 10, 1024, 42);
    let workers = 4usize;
    let per_worker = 8usize;
    let rounds = 24usize;

    // Synchronous baseline: one averaged update per round.
    let mut sync = DataParallel::new(&model, workers, Sgd::new(0.05).momentum(0.9), 7);
    let mut sync_losses = Vec::new();
    for round in 0..rounds {
        let (x, labels) = data.batch(round * workers * per_worker, workers * per_worker);
        sync_losses.push(sync.step(&x, &labels));
    }

    // Asynchronous: all workers pull the same weights, push in turn —
    // maximal staleness for the same number of gradient computations.
    let mut ps = AsyncParameterServer::new(&model, workers, Sgd::new(0.05).momentum(0.9), 7);
    let mut async_losses = Vec::new();
    for round in 0..rounds {
        let pulls: Vec<_> = (0..workers).map(|w| ps.worker_pull(w)).collect();
        let mut mean = 0.0f32;
        for (w, pulled) in pulls.iter().enumerate() {
            let (x, labels) = data.batch(round * workers * per_worker + w * per_worker, per_worker);
            mean += ps.worker_push(w, pulled, &x, &labels);
        }
        async_losses.push(mean / workers as f32);
    }

    let mut table = TextTable::new(["Round", "Sync loss", "Async loss"]);
    for (i, (s, a)) in sync_losses.iter().zip(&async_losses).enumerate() {
        if i % 4 == 0 || i == rounds - 1 {
            table.row([i.to_string(), format!("{s:.4}"), format!("{a:.4}")]);
        }
    }
    voltascope_bench::emit("Extension: sync vs async SGD (LeNet, 4 workers)", &table);
    println!(
        "async staleness: max {} updates, mean {:.2}",
        ps.max_staleness(),
        ps.mean_staleness()
    );
    println!(
        "final loss: sync {:.4} vs async {:.4}",
        sync_losses.last().unwrap(),
        async_losses.last().unwrap()
    );
}
