//! Grid engine throughput: serial vs parallel execution of a reduced
//! Fig. 3 sweep. The parallel speedup recorded in BENCH_grid.json comes
//! from this bench (the full-grid figure is measured by timing the
//! `fig3_training_time` binary under `VOLTASCOPE_THREADS=1` vs the
//! default).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltascope::grid::{Executor, GridSpec};
use voltascope::{experiments::fig3, Harness};
use voltascope_dnn::zoo::Workload;

fn bench_grid_executors(c: &mut Criterion) {
    let harness = Harness::paper();
    // Reduced but uneven sweep: a cheap and an expensive workload, so
    // the dynamic work-stealing actually matters.
    let workloads = [Workload::LeNet, Workload::AlexNet];
    let cells = GridSpec::paper().workloads(workloads.iter().copied()).len() as u64;

    let mut group = c.benchmark_group("grid_engine");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(cells));
    for threads in [1usize, 2, 4, 8] {
        let exec = if threads == 1 {
            Executor::Serial
        } else {
            Executor::Parallel { threads }
        };
        group.bench_with_input(
            BenchmarkId::new("fig3_reduced", format!("{threads}thread")),
            &exec,
            |b, &exec| {
                b.iter(|| fig3::grid_with(&harness, &workloads, exec));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grid_executors);
criterion_main!(benches);
