//! Micro-benchmarks of the discrete-event engine: how fast the
//! simulator itself executes task graphs (this bounds the cost of
//! regenerating the paper's tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltascope_sim::{Engine, SimSpan, TaskGraph};

fn chain(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let r = g.add_resource("r", 1);
    let mut prev = None;
    for i in 0..n {
        let mut b = g
            .task(format!("t{i}"))
            .on(r)
            .lasting(SimSpan::from_nanos(10));
        if let Some(p) = prev {
            b = b.after(p);
        }
        prev = Some(b.build());
    }
    g
}

fn fan(n: usize, width: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let resources: Vec<_> = (0..width)
        .map(|i| g.add_resource(format!("r{i}"), 1))
        .collect();
    let root = g.task("root").lasting(SimSpan::from_nanos(1)).build();
    let mut layer = vec![root];
    for l in 0..n / width {
        layer = (0..width)
            .map(|i| {
                g.task(format!("t{l}.{i}"))
                    .on(resources[i])
                    .lasting(SimSpan::from_nanos(10 + (i as u64 % 5)))
                    .after_all(layer.iter().copied())
                    .build()
            })
            .collect();
    }
    g
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("serial_chain", n), &n, |b, &n| {
            let g = chain(n);
            b.iter(|| Engine::new().run(&g).unwrap().makespan());
        });
        group.bench_with_input(BenchmarkId::new("barrier_fan8", n), &n, |b, &n| {
            let g = fan(n, 8);
            b.iter(|| Engine::new().run(&g).unwrap().makespan());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
