//! Real-execution throughput of the DNN substrate: LeNet training
//! steps, a representative convolution, and GoogLeNet's forward pass
//! at a reduced input (the full ImageNet-scale passes are exercised by
//! the accounting paths; executing them per-sample on a CPU is not the
//! point of the reproduction).

use criterion::{criterion_group, criterion_main, Criterion};
use voltascope_dnn::{softmax_cross_entropy, zoo, Conv2d, Layer, Shape, Tensor};

fn bench_dnn(c: &mut Criterion) {
    c.bench_function("lenet_train_step_batch8", |b| {
        let model = zoo::lenet();
        let params = model.init_params(1);
        let x = Tensor::full(Shape::new([8, 1, 28, 28]), 0.2);
        let labels = [0usize, 1, 2, 3, 4, 5, 6, 7];
        b.iter(|| {
            let acts = model.forward(&params, &x);
            let (loss, g) = softmax_cross_entropy(model.output(&acts), &labels);
            let grads = model.backward(&params, &x, &acts, &g);
            (loss, grads.iter().count())
        });
    });

    c.bench_function("conv3x3_64ch_28x28_fwd", |b| {
        let conv = Conv2d::new(64, 64, 3, 1, 1);
        let x = Tensor::full(Shape::new([1, 64, 28, 28]), 0.5);
        let w = Tensor::full(Shape::new([64, 64, 3, 3]), 0.01);
        let bias = Tensor::zeros(Shape::new([64]));
        b.iter(|| conv.forward(&[&x], &[&w, &bias]).sum());
    });

    c.bench_function("alexnet_kernel_profile_batch64", |b| {
        let model = zoo::alexnet();
        b.iter(|| model.kernel_profile(64).len());
    });

    c.bench_function("inception_v3_build_and_account", |b| {
        b.iter(|| {
            let m = zoo::inception_v3();
            (m.param_count(), m.forward_flops(16), m.activation_bytes(16))
        });
    });
}

criterion_group!(benches, bench_dnn);
criterion_main!(benches);
