//! Snapshot codec throughput: v5 encode, lazy load, and eager decode
//! of a reduced but trace-heavy report cache. The CI warm-load perf
//! budget times the `fig3_training_time` binary end to end; this bench
//! isolates the codec itself so an encoding regression (a slower LZSS
//! search, an accidental eager decode on the load path) shows up as a
//! per-byte number rather than a wall-clock smear.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltascope::grid::GridSpec;
use voltascope::service::{persist, GridService};
use voltascope::Harness;
use voltascope_dnn::zoo::Workload;

fn bench_snapshot_codec(c: &mut Criterion) {
    let harness = Harness::paper();
    let fingerprint = persist::harness_fingerprint(&harness);
    let service = GridService::new(harness);
    // A cheap and an expensive workload: real iteration traces with
    // the per-iteration `itN/<kernel>@GPUk` label families the v5
    // front-coded tables and LZSS layer exist for.
    let spec = GridSpec::paper().workloads([Workload::LeNet, Workload::AlexNet].iter().copied());
    let out = service.sweep_traced(&spec);
    let entries: Vec<_> = out.iter().map(|(cell, r)| (*cell, r.clone())).collect();
    let image = persist::encode(fingerprint, &entries);
    let shared: Arc<[u8]> = image.clone().into();

    let mut group = c.benchmark_group("snapshot_codec");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Bytes(image.len() as u64));
    group.bench_function(BenchmarkId::new("encode_v5", "reduced_fig3"), |b| {
        b.iter(|| persist::encode(fingerprint, &entries));
    });
    // The warm-start path: header/scalar parse only, traces stay as
    // offset windows. This is what a table-only sweep pays.
    group.bench_function(BenchmarkId::new("load_lazy", "reduced_fig3"), |b| {
        b.iter(|| persist::decode_entries_lazy(&shared, fingerprint).unwrap());
    });
    // The full decode a trace consumer pays, for scale.
    group.bench_function(BenchmarkId::new("decode_eager", "reduced_fig3"), |b| {
        b.iter(|| persist::decode_entries(&image, fingerprint).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_codec);
criterion_main!(benches);
