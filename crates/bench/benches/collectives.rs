//! Semantic collective throughput: how fast the buffer-level ring
//! AllReduce (the numerics used by the real data-parallel trainer)
//! processes model-sized gradients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use voltascope_comm::semantic;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_reduce");
    for ranks in [2usize, 4, 8] {
        for len in [61_706usize, 1_000_000] {
            // LeNet-sized and 1M-element gradients.
            group.throughput(Throughput::Elements((ranks * len) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{ranks}ranks"), len),
                &(ranks, len),
                |b, &(ranks, len)| {
                    let proto: Vec<Vec<f32>> = (0..ranks)
                        .map(|r| (0..len).map(|i| (r * len + i) as f32).collect())
                        .collect();
                    b.iter(|| {
                        let mut bufs = proto.clone();
                        semantic::ring_all_reduce(&mut bufs);
                        bufs[0][0]
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
