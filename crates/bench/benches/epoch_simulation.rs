//! End-to-end cost of the reproduction harness: wall time to simulate
//! one training epoch per configuration (what every cell of the paper's
//! Fig. 3 grid costs to regenerate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltascope::Harness;
use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_train::ScalingMode;

fn bench_epochs(c: &mut Criterion) {
    let harness = Harness::paper();
    let mut group = c.benchmark_group("simulate_epoch");
    group.sample_size(10);
    for workload in [Workload::LeNet, Workload::AlexNet, Workload::InceptionV3] {
        let model = workload.build();
        for gpus in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(workload.name(), format!("{gpus}gpu")),
                &gpus,
                |b, &gpus| {
                    b.iter(|| {
                        harness
                            .epoch(&model, 16, gpus, CommMethod::Nccl, ScalingMode::Strong)
                            .epoch_time
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
