//! Fault-path micro-benchmarks: `Topology::apply` (degraded-graph
//! rebuild) and `Ring::build` (Hamiltonian-cycle search) on healthy,
//! degraded, and dense topologies. The ring search is a bounded DFS
//! (`Ring::SEARCH_NODE_BUDGET`); the dense 12-GPU case exercises the
//! cutoff, the degraded DGX-1 cases stay within it and measure the
//! renegotiation cost the training simulator pays per fault scenario.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use voltascope_comm::Ring;
use voltascope_topo::{dgx1_v100, full_nvlink_switch, Device, FaultSpec, Topology};

fn degraded_specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("healthy", FaultSpec::new()),
        (
            "dead_cable",
            FaultSpec::new().kill_link(Device::gpu(3), Device::gpu(5)),
        ),
        (
            "dead_interface",
            FaultSpec::new().kill_nvlinks_of(Device::gpu(3)),
        ),
        (
            "composite",
            FaultSpec::new()
                .kill_nvlinks_of(Device::gpu(3))
                .degrade_link(Device::gpu(0), Device::gpu(1), 0.5)
                .slow_gpu(Device::gpu(6), 1.5),
        ),
    ]
}

fn bench_topology_apply(c: &mut Criterion) {
    let topo = dgx1_v100();
    let mut group = c.benchmark_group("topology_apply");
    for (name, spec) in degraded_specs() {
        group.bench_with_input(BenchmarkId::new("dgx1", name), &spec, |b, spec| {
            b.iter(|| black_box(topo.apply(black_box(spec))));
        });
    }
    group.finish();
}

fn bench_ring_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_build");
    // Degraded DGX-1 graphs: the DFS explores dead-end branches but
    // stays far below the node budget.
    for (name, spec) in degraded_specs() {
        let degraded: Topology = dgx1_v100().apply(&spec);
        group.bench_with_input(BenchmarkId::new("dgx1_8gpu", name), &degraded, |b, t| {
            b.iter(|| black_box(Ring::build(black_box(t), 8)));
        });
    }
    // Dense all-to-all graphs: 8 GPUs is exhaustively searched (~14k
    // nodes); 12 GPUs would be 11! cycles and runs into the budget.
    for gpus in [8usize, 12] {
        let switch = full_nvlink_switch(gpus as u8);
        group.bench_with_input(
            BenchmarkId::new("nvswitch", format!("{gpus}gpu")),
            &switch,
            |b, t| {
                b.iter(|| black_box(Ring::build(black_box(t), gpus)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topology_apply, bench_ring_build);
criterion_main!(benches);
