//! The `.workload` schema: a small line-oriented text format that
//! describes a training workload as data — layer names and kinds,
//! per-layer FLOP and byte counts at batch 1, parameter bytes, and
//! parallelism axes — so that new model families are files under
//! `workloads/`, not Rust modules.
//!
//! # Grammar (v1 and v2)
//!
//! ```text
//! workload v1                      # or `workload v2`
//! name <display name, rest of line>
//! input <dim> [<dim> ...]          # canonical shape without the batch dim
//! axis pipeline <stages>           # optional, default 1
//! layer <name> <kind> <stage> <fp_flops> <bp_flops> <in_bytes> <out_bytes> <param_bytes> <tc>
//! dep <name> [<pred> ...]          # v2 only: explicit dataflow edges
//! ...
//! end
//! ```
//!
//! Blank lines and `#` comments are accepted anywhere; the canonical
//! serialisation ([`WorkloadSpec::to_text`]) emits neither, so a file
//! generated from a model byte-compares stably. All per-layer numbers
//! are batch-1 values; the lowering pass scales them (every layer kind
//! in the zoo is exactly linear in batch). `<tc>` is `1` if the layer's
//! kernels run on tensor cores, else `0`.
//!
//! # Dependency edges (v2)
//!
//! A v2 file may declare each layer's dataflow predecessors with a
//! `dep` directive: `dep <layer> <pred> ...` says the named layer
//! consumes the outputs of the listed predecessor layers; an empty
//! predecessor list (`dep <layer>`) says it reads only the external
//! input. Layers *without* a `dep` line keep the v1 behaviour of
//! depending on the previous layer in file order, so a v2 file with no
//! `dep` lines at all describes exactly the same linear chain as its
//! v1 twin and lowers byte-identically. Each explicit edge carries the
//! predecessor's `out_bytes` as its fan-in volume, making the
//! otherwise-flattened `in_bytes` sum attributable per edge. `dep`
//! lines may reference layers declared later in the file; the parser
//! validates every name and rejects dependency cycles at `end`, with
//! the line/column of the offending `dep` directive.
//!
//! The parser is hand-rolled and dependency-free in the discipline of
//! the `persist` codec: it never panics, and every malformed input maps
//! to a typed [`ParseError`] carrying the 1-based line and column of
//! the offending token.

use voltascope_dnn::Model;

/// Layer kinds a `.workload` file may declare. The CNN kinds mirror
/// [`voltascope_dnn::Layer::kind`]; the transformer kinds exist only as
/// data (no Rust layer module) — the simulator consumes FLOP/byte
/// counts, not semantics.
pub const KNOWN_KINDS: [&str; 12] = [
    "conv",
    "fc",
    "relu",
    "maxpool",
    "avgpool",
    "batchnorm",
    "concat",
    "add",
    "attention",
    "mlp",
    "layernorm",
    "embed",
];

/// One layer row of a workload spec (all counts at batch 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Layer name, unique within the workload (a single token).
    pub name: String,
    /// Layer kind, one of [`KNOWN_KINDS`].
    pub kind: String,
    /// Pipeline stage this layer is placed on (`< pipeline_stages`).
    pub stage: usize,
    /// Forward FLOPs for one sample.
    pub fp_flops: u64,
    /// Backward FLOPs for one sample.
    pub bp_flops: u64,
    /// Input activation bytes for one sample (sum over fan-in).
    pub in_bytes: u64,
    /// Output activation bytes for one sample.
    pub out_bytes: u64,
    /// Parameter bytes (f32 weights; also the gradient bucket size).
    pub param_bytes: u64,
    /// Whether the layer's kernels run on tensor cores.
    pub tensor_cores: bool,
    /// Explicit dataflow predecessors (v2 `dep` directive). `None`
    /// means no `dep` line was given: the layer implicitly follows the
    /// previous layer in file order (the v1 linear chain).
    /// `Some(vec![])` means the layer reads only the external input.
    pub deps: Option<Vec<String>>,
}

/// A parsed workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Schema version the spec was parsed from (1 or 2). Version 2
    /// admits `dep` directives; [`WorkloadSpec::to_text`] emits the
    /// matching header.
    pub version: u32,
    /// Display name (may contain spaces, e.g. `Inception-v3`).
    pub name: String,
    /// Canonical per-sample input dims (without the batch dimension).
    pub input_dims: Vec<usize>,
    /// Number of pipeline-parallel stages (1 = no pipeline axis).
    pub pipeline_stages: usize,
    /// Layers in forward execution order.
    pub layers: Vec<LayerSpec>,
}

/// What went wrong at one spot of a `.workload` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The first line is not `workload v1` or `workload v2`.
    BadHeader,
    /// A line starts with an unrecognised directive.
    UnknownDirective(String),
    /// A `layer` row names a kind outside [`KNOWN_KINDS`].
    UnknownLayerKind(String),
    /// An `axis` directive names an axis other than `pipeline`.
    UnknownAxis(String),
    /// Two `layer` rows share a name.
    DuplicateLayer(String),
    /// A singleton directive (`name`, `input`, `axis`) appears twice.
    DuplicateDirective(&'static str),
    /// `end` was reached without a required directive.
    MissingDirective(&'static str),
    /// A directive is missing a required field.
    MissingField(&'static str),
    /// A numeric field failed to parse (or is out of its domain).
    BadNumber(String),
    /// A layer's pipeline stage is `>=` the declared stage count.
    StageOutOfRange {
        /// The out-of-range stage the layer asked for.
        stage: usize,
        /// The declared stage count it must stay below.
        stages: usize,
    },
    /// A `dep` directive names a layer that does not exist.
    UnknownLayerName(String),
    /// Two `dep` directives target the same layer.
    DuplicateDep(String),
    /// The `dep` edges form a dependency cycle through this layer.
    CyclicDependency(String),
    /// The input ended before the `end` directive.
    Truncated,
    /// Non-comment content after the `end` directive.
    TrailingInput,
}

/// A parse failure with its position: 1-based line and column of the
/// offending token (column 1 for whole-line conditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub column: usize,
    /// What went wrong there.
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, column {}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::BadHeader => {
                write!(f, "expected header `workload v1` or `workload v2`")
            }
            ParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseErrorKind::UnknownLayerKind(k) => write!(f, "unknown layer kind `{k}`"),
            ParseErrorKind::UnknownAxis(a) => write!(f, "unknown parallelism axis `{a}`"),
            ParseErrorKind::DuplicateLayer(n) => write!(f, "duplicate layer name `{n}`"),
            ParseErrorKind::DuplicateDirective(d) => write!(f, "duplicate `{d}` directive"),
            ParseErrorKind::MissingDirective(d) => write!(f, "missing `{d}` directive"),
            ParseErrorKind::MissingField(field) => write!(f, "missing field `{field}`"),
            ParseErrorKind::BadNumber(t) => write!(f, "bad number `{t}`"),
            ParseErrorKind::StageOutOfRange { stage, stages } => write!(
                f,
                "pipeline stage {stage} out of range (workload declares {stages} stage(s))"
            ),
            ParseErrorKind::UnknownLayerName(n) => {
                write!(f, "`dep` references unknown layer `{n}`")
            }
            ParseErrorKind::DuplicateDep(n) => write!(f, "duplicate `dep` directive for `{n}`"),
            ParseErrorKind::CyclicDependency(n) => {
                write!(f, "dependency cycle through layer `{n}`")
            }
            ParseErrorKind::Truncated => write!(f, "file ends before `end` directive"),
            ParseErrorKind::TrailingInput => write!(f, "content after `end` directive"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Splits a line into `(1-based column, token)` pairs on ASCII
/// whitespace.
fn tokens(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        out.push((start + 1, &line[start..i]));
    }
    out
}

fn err(line: usize, column: usize, kind: ParseErrorKind) -> ParseError {
    ParseError { line, column, kind }
}

/// Marks the layers sitting on a dependency cycle, if any exists:
/// Kahn elimination over the predecessor edges and over their
/// reverses; a node surviving both prunes lies on (or inside a tangle
/// of) a cycle. Returns `None` for an acyclic graph.
fn find_cycle(preds: &[Vec<usize>]) -> Option<Vec<bool>> {
    let n = preds.len();
    let survivors = |forward: bool| -> Vec<bool> {
        let mut deg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                let (from, to) = if forward { (p, i) } else { (i, p) };
                deg[to] += 1;
                out[from].push(to);
            }
        }
        let mut alive = vec![true; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| deg[i] == 0).collect();
        while let Some(i) = stack.pop() {
            alive[i] = false;
            for &s in &out[i] {
                deg[s] -= 1;
                if deg[s] == 0 {
                    stack.push(s);
                }
            }
        }
        alive
    };
    let fwd = survivors(true);
    let bwd = survivors(false);
    let both: Vec<bool> = fwd.iter().zip(&bwd).map(|(&a, &b)| a && b).collect();
    both.iter().any(|&b| b).then_some(both)
}

/// Why a hand-constructed spec's dependency edges do not resolve (the
/// parser reports the same conditions as positioned [`ParseError`]s;
/// this form exists for specs built in Rust, which skip the parser).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepError {
    /// A layer's `deps` names a layer that does not exist.
    Unknown {
        /// The layer whose `deps` list is broken.
        layer: String,
        /// The name that resolved to nothing.
        dep: String,
    },
    /// The dependency edges form a cycle through this layer.
    Cycle(String),
}

impl std::fmt::Display for DepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepError::Unknown { layer, dep } => {
                write!(f, "layer `{layer}` depends on unknown layer `{dep}`")
            }
            DepError::Cycle(layer) => write!(f, "dependency cycle through layer `{layer}`"),
        }
    }
}

impl std::error::Error for DepError {}

fn parse_u64(line: usize, col: usize, tok: &str) -> Result<u64, ParseError> {
    tok.parse::<u64>()
        .map_err(|_| err(line, col, ParseErrorKind::BadNumber(tok.to_string())))
}

fn parse_dim(line: usize, col: usize, tok: &str) -> Result<usize, ParseError> {
    match tok.parse::<usize>() {
        Ok(v) if v >= 1 => Ok(v),
        _ => Err(err(line, col, ParseErrorKind::BadNumber(tok.to_string()))),
    }
}

impl WorkloadSpec {
    /// Parses the v1 text format. Never panics; every malformed input
    /// yields a [`ParseError`] naming the offending line and column.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_workload::WorkloadSpec;
    ///
    /// let text = "workload v1\nname Tiny\ninput 1 8 8\naxis pipeline 1\n\
    ///             layer fc1 fc 0 1280 2560 256 40 2600 1\nend\n";
    /// let spec = WorkloadSpec::parse(text).unwrap();
    /// assert_eq!(spec.name, "Tiny");
    /// assert_eq!(spec.layers.len(), 1);
    /// assert_eq!(spec.to_text(), text.replace("            ", ""));
    /// ```
    pub fn parse(text: &str) -> Result<WorkloadSpec, ParseError> {
        let mut version = 0u32;
        let mut name: Option<String> = None;
        let mut input_dims: Option<Vec<usize>> = None;
        let mut stages: Option<usize> = None;
        // (line number, spec) per layer: stage range is validated once
        // the axis count is known, pointing back at the layer's line.
        let mut layers: Vec<(usize, LayerSpec)> = Vec::new();
        // Raw `dep` directives: (line, target col, target name,
        // [(pred col, pred name)]). Resolved after `end`, so a `dep`
        // may reference layers declared later in the file.
        type DepLine = (usize, usize, String, Vec<(usize, String)>);
        let mut dep_lines: Vec<DepLine> = Vec::new();
        let mut seen_header = false;
        let mut seen_end: Option<usize> = None;
        let mut line_count = 0;

        for (li, raw) in text.lines().enumerate() {
            let lineno = li + 1;
            line_count = lineno;
            let toks = tokens(raw);
            let Some(&(col0, directive)) = toks.first() else {
                continue; // blank line
            };
            if directive.starts_with('#') {
                continue; // comment
            }
            if let Some(end_line) = seen_end {
                let _ = end_line;
                return Err(err(lineno, col0, ParseErrorKind::TrailingInput));
            }
            if !seen_header {
                if directive == "workload" {
                    match toks.get(1).map(|&(_, t)| t) {
                        Some("v1") => version = 1,
                        Some("v2") => version = 2,
                        _ => return Err(err(lineno, col0, ParseErrorKind::BadHeader)),
                    }
                    seen_header = true;
                    continue;
                }
                return Err(err(lineno, col0, ParseErrorKind::BadHeader));
            }
            match directive {
                "name" => {
                    if name.is_some() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::DuplicateDirective("name"),
                        ));
                    }
                    let Some(&(col1, _)) = toks.get(1) else {
                        return Err(err(lineno, col0, ParseErrorKind::MissingField("name")));
                    };
                    name = Some(raw[col1 - 1..].trim_end().to_string());
                }
                "input" => {
                    if input_dims.is_some() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::DuplicateDirective("input"),
                        ));
                    }
                    if toks.len() < 2 {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::MissingField("input dims"),
                        ));
                    }
                    let mut dims = Vec::with_capacity(toks.len() - 1);
                    for &(col, tok) in &toks[1..] {
                        dims.push(parse_dim(lineno, col, tok)?);
                    }
                    input_dims = Some(dims);
                }
                "axis" => {
                    let Some(&(acol, axis)) = toks.get(1) else {
                        return Err(err(lineno, col0, ParseErrorKind::MissingField("axis name")));
                    };
                    if axis != "pipeline" {
                        return Err(err(
                            lineno,
                            acol,
                            ParseErrorKind::UnknownAxis(axis.to_string()),
                        ));
                    }
                    if stages.is_some() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::DuplicateDirective("axis"),
                        ));
                    }
                    let Some(&(ncol, ntok)) = toks.get(2) else {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::MissingField("stage count"),
                        ));
                    };
                    stages = Some(parse_dim(lineno, ncol, ntok)?);
                }
                "layer" => {
                    const FIELDS: [&str; 9] = [
                        "layer name",
                        "layer kind",
                        "pipeline stage",
                        "fp_flops",
                        "bp_flops",
                        "in_bytes",
                        "out_bytes",
                        "param_bytes",
                        "tensor_cores",
                    ];
                    if toks.len() < 1 + FIELDS.len() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::MissingField(FIELDS[toks.len() - 1]),
                        ));
                    }
                    let (ncol, lname) = toks[1];
                    let _ = ncol;
                    if layers.iter().any(|(_, l)| l.name == lname) {
                        return Err(err(
                            lineno,
                            toks[1].0,
                            ParseErrorKind::DuplicateLayer(lname.to_string()),
                        ));
                    }
                    let (kcol, kind) = toks[2];
                    if !KNOWN_KINDS.contains(&kind) {
                        return Err(err(
                            lineno,
                            kcol,
                            ParseErrorKind::UnknownLayerKind(kind.to_string()),
                        ));
                    }
                    let stage = parse_u64(lineno, toks[3].0, toks[3].1)? as usize;
                    let fp_flops = parse_u64(lineno, toks[4].0, toks[4].1)?;
                    let bp_flops = parse_u64(lineno, toks[5].0, toks[5].1)?;
                    let in_bytes = parse_u64(lineno, toks[6].0, toks[6].1)?;
                    let out_bytes = parse_u64(lineno, toks[7].0, toks[7].1)?;
                    let param_bytes = parse_u64(lineno, toks[8].0, toks[8].1)?;
                    let tensor_cores = match toks[9].1 {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(err(
                                lineno,
                                toks[9].0,
                                ParseErrorKind::BadNumber(other.to_string()),
                            ))
                        }
                    };
                    layers.push((
                        lineno,
                        LayerSpec {
                            name: lname.to_string(),
                            kind: kind.to_string(),
                            stage,
                            fp_flops,
                            bp_flops,
                            in_bytes,
                            out_bytes,
                            param_bytes,
                            tensor_cores,
                            deps: None,
                        },
                    ));
                }
                // `dep` exists only in v2; under v1 it falls through to
                // the unknown-directive arm, preserving the v1 parser's
                // rejection byte for byte.
                "dep" if version >= 2 => {
                    let Some(&(tcol, target)) = toks.get(1) else {
                        return Err(err(lineno, col0, ParseErrorKind::MissingField("dep layer")));
                    };
                    let preds = toks[2..].iter().map(|&(c, t)| (c, t.to_string())).collect();
                    dep_lines.push((lineno, tcol, target.to_string(), preds));
                }
                "end" => {
                    if name.is_none() {
                        return Err(err(lineno, col0, ParseErrorKind::MissingDirective("name")));
                    }
                    if input_dims.is_none() {
                        return Err(err(lineno, col0, ParseErrorKind::MissingDirective("input")));
                    }
                    seen_end = Some(lineno);
                }
                other => {
                    return Err(err(
                        lineno,
                        col0,
                        ParseErrorKind::UnknownDirective(other.to_string()),
                    ));
                }
            }
        }

        if seen_end.is_none() {
            return Err(err(line_count + 1, 1, ParseErrorKind::Truncated));
        }
        let pipeline_stages = stages.unwrap_or(1);
        for (lineno, l) in &layers {
            if l.stage >= pipeline_stages {
                return Err(err(
                    *lineno,
                    1,
                    ParseErrorKind::StageOutOfRange {
                        stage: l.stage,
                        stages: pipeline_stages,
                    },
                ));
            }
        }

        // ---- Resolve `dep` directives (v2). ----
        let index: std::collections::BTreeMap<String, usize> = layers
            .iter()
            .enumerate()
            .map(|(i, (_, l))| (l.name.clone(), i))
            .collect();
        for (lineno, tcol, target, preds) in &dep_lines {
            let Some(&ti) = index.get(target.as_str()) else {
                return Err(err(
                    *lineno,
                    *tcol,
                    ParseErrorKind::UnknownLayerName(target.clone()),
                ));
            };
            if layers[ti].1.deps.is_some() {
                return Err(err(
                    *lineno,
                    *tcol,
                    ParseErrorKind::DuplicateDep(target.clone()),
                ));
            }
            let mut names = Vec::with_capacity(preds.len());
            for (pcol, pred) in preds {
                if !index.contains_key(pred.as_str()) {
                    return Err(err(
                        *lineno,
                        *pcol,
                        ParseErrorKind::UnknownLayerName(pred.clone()),
                    ));
                }
                // Repeated mentions of the same predecessor collapse
                // to one edge.
                if !names.contains(pred) {
                    names.push(pred.clone());
                }
            }
            layers[ti].1.deps = Some(names);
        }
        if !dep_lines.is_empty() {
            // Cycle check over the effective graph (explicit edges plus
            // the linear default for un-`dep`ed layers; defaults always
            // point backwards, so any cycle crosses an explicit edge).
            let preds: Vec<Vec<usize>> = layers
                .iter()
                .enumerate()
                .map(|(i, (_, l))| match &l.deps {
                    Some(names) => names.iter().map(|n| index[n.as_str()]).collect(),
                    None if i > 0 => vec![i - 1],
                    None => Vec::new(),
                })
                .collect();
            if let Some(in_cycle) = find_cycle(&preds) {
                // Point at the first `dep` directive targeting a layer
                // on the cycle (one always exists: defaults cannot form
                // cycles on their own).
                let (lineno, tcol, target) = dep_lines
                    .iter()
                    .filter_map(|(lineno, tcol, target, _)| {
                        let ti = index[target.as_str()];
                        in_cycle[ti].then_some((*lineno, *tcol, target.clone()))
                    })
                    .next()
                    .unwrap_or_else(|| {
                        let (lineno, tcol, target, _) = &dep_lines[0];
                        (*lineno, *tcol, target.clone())
                    });
                return Err(err(lineno, tcol, ParseErrorKind::CyclicDependency(target)));
            }
        }

        Ok(WorkloadSpec {
            version,
            name: name.expect("checked at end"),
            input_dims: input_dims.expect("checked at end"),
            pipeline_stages,
            layers: layers.into_iter().map(|(_, l)| l).collect(),
        })
    }

    /// Serialises to the canonical text: no comments, no blank lines,
    /// one space between fields, the `axis pipeline` line always
    /// present, each layer's `dep` line (if any) directly after its
    /// `layer` row. `parse(to_text(s)) == s` for every valid spec. A
    /// spec carrying explicit deps always serialises with the v2
    /// header (deps are not expressible in v1).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let v2 = self.version >= 2 || self.layers.iter().any(|l| l.deps.is_some());
        let mut out = String::new();
        out.push_str(if v2 { "workload v2\n" } else { "workload v1\n" });
        writeln!(out, "name {}", self.name).unwrap();
        out.push_str("input");
        for d in &self.input_dims {
            write!(out, " {d}").unwrap();
        }
        out.push('\n');
        writeln!(out, "axis pipeline {}", self.pipeline_stages).unwrap();
        for l in &self.layers {
            writeln!(
                out,
                "layer {} {} {} {} {} {} {} {} {}",
                l.name,
                l.kind,
                l.stage,
                l.fp_flops,
                l.bp_flops,
                l.in_bytes,
                l.out_bytes,
                l.param_bytes,
                u8::from(l.tensor_cores),
            )
            .unwrap();
            if let Some(deps) = &l.deps {
                write!(out, "dep {}", l.name).unwrap();
                for d in deps {
                    write!(out, " {d}").unwrap();
                }
                out.push('\n');
            }
        }
        out.push_str("end\n");
        out
    }

    /// Extracts the declarative spec of a built [`Model`]: batch-1
    /// FLOP/byte counts per layer, no pipeline axis. This is how the
    /// checked-in zoo `.workload` files are generated, and the anchor
    /// of the builder-vs-data byte-identity tests.
    pub fn from_model(model: &Model) -> WorkloadSpec {
        let layers = model
            .layer_info()
            .into_iter()
            .map(|li| LayerSpec {
                name: li.name,
                kind: li.kind.to_string(),
                stage: 0,
                fp_flops: li.fp_flops,
                bp_flops: li.bp_flops,
                in_bytes: li.in_bytes,
                out_bytes: li.out_bytes,
                param_bytes: li.param_bytes,
                tensor_cores: li.tensor_cores,
                deps: None,
            })
            .collect();
        WorkloadSpec {
            version: 1,
            name: model.name().to_string(),
            input_dims: model.input_shape().dims()[1..].to_vec(),
            pipeline_stages: 1,
            layers,
        }
    }

    /// Like [`WorkloadSpec::from_model`], but carries the model's real
    /// graph edges as explicit v2 `dep` directives instead of
    /// flattening to the linear chain: every layer gets a `deps` list
    /// naming its node-inputs (external `Input` sources omitted, so a
    /// sourceless layer reads the external input). Lowering such a
    /// spec schedules independent branches concurrently.
    pub fn from_model_dag(model: &Model) -> WorkloadSpec {
        let mut spec = Self::from_model(model);
        spec.version = 2;
        for (l, deps) in spec.layers.iter_mut().zip(model.layer_deps()) {
            l.deps = Some(deps);
        }
        spec
    }

    /// True if any layer carries an explicit v2 `deps` list; edge-free
    /// specs (all `None`) lower to the v1 linear chain.
    pub fn has_explicit_deps(&self) -> bool {
        self.layers.iter().any(|l| l.deps.is_some())
    }

    /// Resolves each layer's effective predecessors to layer indices:
    /// explicit `deps` where given, the previous layer in file order
    /// otherwise (the v1 linear default; layer 0 defaults to no
    /// predecessors). Parser-produced specs never fail here — both
    /// error cases are rejected at parse time — but hand-built specs
    /// can, so the check is repeated rather than assumed.
    pub fn resolved_deps(&self) -> Result<Vec<Vec<usize>>, DepError> {
        let index: std::collections::BTreeMap<&str, usize> = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| (l.name.as_str(), i))
            .collect();
        let mut preds = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            preds.push(match &l.deps {
                Some(names) => {
                    let mut ps = Vec::with_capacity(names.len());
                    for n in names {
                        let Some(&p) = index.get(n.as_str()) else {
                            return Err(DepError::Unknown {
                                layer: l.name.clone(),
                                dep: n.clone(),
                            });
                        };
                        if !ps.contains(&p) {
                            ps.push(p);
                        }
                    }
                    ps
                }
                None if i > 0 => vec![i - 1],
                None => Vec::new(),
            });
        }
        if let Some(in_cycle) = find_cycle(&preds) {
            let li = in_cycle.iter().position(|&b| b).expect("non-empty cycle");
            return Err(DepError::Cycle(self.layers[li].name.clone()));
        }
        Ok(preds)
    }

    /// Total parameter bytes across all layers.
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// The layers placed on pipeline stage `s`, in forward order.
    pub fn stage_layers(&self, s: usize) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(move |l| l.stage == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "workload v1\n\
                        name Tiny Net\n\
                        input 3 8 8\n\
                        axis pipeline 2\n\
                        layer conv1 conv 0 1000 2000 768 1024 432 1\n\
                        layer fc1 fc 1 500 1000 1024 40 41000 1\n\
                        end\n";

    #[test]
    fn parses_and_round_trips() {
        let spec = WorkloadSpec::parse(TINY).unwrap();
        assert_eq!(spec.name, "Tiny Net");
        assert_eq!(spec.input_dims, vec![3, 8, 8]);
        assert_eq!(spec.pipeline_stages, 2);
        assert_eq!(spec.layers.len(), 2);
        assert_eq!(spec.layers[1].stage, 1);
        assert!(spec.layers[0].tensor_cores);
        let text = spec.to_text();
        assert_eq!(WorkloadSpec::parse(&text).unwrap(), spec);
        assert_eq!(text, TINY);
    }

    #[test]
    fn accepts_comments_and_blank_lines() {
        let noisy = "# generated\n\nworkload v1\nname N\n# dims\ninput 4\n\n\
                     layer a fc 0 1 2 4 4 8 0\nend\n\n# tail comment\n";
        let spec = WorkloadSpec::parse(noisy).unwrap();
        assert_eq!(spec.name, "N");
        assert_eq!(spec.pipeline_stages, 1);
    }

    #[test]
    fn header_must_come_first() {
        let e = WorkloadSpec::parse("name X\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::BadHeader);
    }

    #[test]
    fn truncated_file_is_typed() {
        let e = WorkloadSpec::parse("workload v1\nname X\ninput 4\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Truncated);
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn unknown_layer_kind_names_the_line() {
        let bad = "workload v1\nname X\ninput 4\nlayer a warp 0 1 2 4 4 8 0\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.kind, ParseErrorKind::UnknownLayerKind("warp".into()));
        assert_eq!(e.column, 9);
    }

    #[test]
    fn duplicate_layer_name_is_rejected() {
        let bad =
            "workload v1\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nlayer a fc 0 1 2 4 4 8 0\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.kind, ParseErrorKind::DuplicateLayer("a".into()));
    }

    #[test]
    fn stage_out_of_range_points_at_the_layer() {
        let bad = "workload v1\nname X\ninput 4\naxis pipeline 2\nlayer a fc 2 1 2 4 4 8 0\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(
            e.kind,
            ParseErrorKind::StageOutOfRange {
                stage: 2,
                stages: 2
            }
        );
        // Without an axis directive the default single stage applies.
        let bad1 = "workload v1\nname X\ninput 4\nlayer a fc 1 1 2 4 4 8 0\nend\n";
        let e1 = WorkloadSpec::parse(bad1).unwrap_err();
        assert_eq!(
            e1.kind,
            ParseErrorKind::StageOutOfRange {
                stage: 1,
                stages: 1
            }
        );
    }

    #[test]
    fn bad_numbers_and_missing_fields() {
        let bad = "workload v1\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MissingField("tensor_cores"));
        let bad2 = "workload v1\nname X\ninput 4\nlayer a fc 0 one 2 4 4 8 0\nend\n";
        let e2 = WorkloadSpec::parse(bad2).unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::BadNumber("one".into()));
        let bad3 = "workload v1\nname X\ninput 0\nend\n";
        let e3 = WorkloadSpec::parse(bad3).unwrap_err();
        assert_eq!(e3.kind, ParseErrorKind::BadNumber("0".into()));
    }

    #[test]
    fn unknown_directive_and_axis() {
        let e = WorkloadSpec::parse("workload v1\nshape 4\nend\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownDirective("shape".into()));
        let e2 = WorkloadSpec::parse("workload v1\naxis tensor 4\nend\n").unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::UnknownAxis("tensor".into()));
    }

    #[test]
    fn end_requires_name_and_input() {
        let e = WorkloadSpec::parse("workload v1\ninput 4\nend\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MissingDirective("name"));
        let e2 = WorkloadSpec::parse("workload v1\nname X\nend\n").unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::MissingDirective("input"));
    }

    #[test]
    fn trailing_content_is_rejected() {
        let e = WorkloadSpec::parse("workload v1\nname X\ninput 4\nend\nname Y\n").unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.kind, ParseErrorKind::TrailingInput);
    }

    #[test]
    fn duplicate_directives_are_rejected() {
        let e = WorkloadSpec::parse("workload v1\nname X\nname Y\nend\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateDirective("name"));
    }

    const BRANCHY: &str = "workload v2\n\
                           name Branchy\n\
                           input 4\n\
                           axis pipeline 1\n\
                           layer stem conv 0 10 20 4 8 12 0\n\
                           layer left conv 0 10 20 8 8 12 0\n\
                           dep left stem\n\
                           layer right conv 0 10 20 8 8 12 0\n\
                           dep right stem\n\
                           layer join concat 0 1 2 16 16 0 0\n\
                           dep join left right\n\
                           end\n";

    #[test]
    fn v2_deps_parse_and_round_trip() {
        let spec = WorkloadSpec::parse(BRANCHY).unwrap();
        assert_eq!(spec.version, 2);
        assert!(spec.has_explicit_deps());
        assert_eq!(spec.layers[0].deps, None);
        assert_eq!(spec.layers[1].deps, Some(vec!["stem".to_string()]));
        assert_eq!(
            spec.layers[3].deps,
            Some(vec!["left".to_string(), "right".to_string()])
        );
        let text = spec.to_text();
        assert_eq!(text, BRANCHY);
        assert_eq!(WorkloadSpec::parse(&text).unwrap(), spec);
        // stem defaults linear (no preds: it is layer 0); join fans in.
        let preds = spec.resolved_deps().unwrap();
        assert_eq!(preds, vec![vec![], vec![0], vec![0], vec![1, 2]]);
    }

    #[test]
    fn edge_free_v2_matches_v1_apart_from_version() {
        let v2 = TINY.replacen("workload v1", "workload v2", 1);
        let s1 = WorkloadSpec::parse(TINY).unwrap();
        let s2 = WorkloadSpec::parse(&v2).unwrap();
        assert_eq!(s2.version, 2);
        assert!(!s2.has_explicit_deps());
        assert_eq!(s2.layers, s1.layers);
        assert_eq!(s1.resolved_deps().unwrap(), s2.resolved_deps().unwrap());
        // The header survives the round trip even without edges.
        assert_eq!(s2.to_text(), v2);
    }

    #[test]
    fn dep_is_unknown_under_v1() {
        let bad = "workload v1\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\ndep a\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.kind, ParseErrorKind::UnknownDirective("dep".into()));
    }

    #[test]
    fn dep_forward_references_are_allowed() {
        let fwd = "workload v2\nname X\ninput 4\n\
                   dep a b\nlayer a fc 0 1 2 4 4 8 0\nlayer b fc 0 1 2 4 4 8 0\ndep b\nend\n";
        let spec = WorkloadSpec::parse(fwd).unwrap();
        assert_eq!(spec.layers[0].deps, Some(vec!["b".to_string()]));
        assert_eq!(spec.layers[1].deps, Some(vec![]));
        assert_eq!(spec.resolved_deps().unwrap(), vec![vec![1], vec![]]);
    }

    #[test]
    fn dep_unknown_names_carry_line_and_column() {
        let bad = "workload v2\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\ndep ghost a\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.column, 5);
        assert_eq!(e.kind, ParseErrorKind::UnknownLayerName("ghost".into()));

        let bad2 = "workload v2\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\ndep a ghost\nend\n";
        let e2 = WorkloadSpec::parse(bad2).unwrap_err();
        assert_eq!(e2.line, 5);
        assert_eq!(e2.column, 7);
        assert_eq!(e2.kind, ParseErrorKind::UnknownLayerName("ghost".into()));
    }

    #[test]
    fn duplicate_dep_and_missing_target_are_rejected() {
        let bad = "workload v2\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\ndep a\ndep a\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 6);
        assert_eq!(e.kind, ParseErrorKind::DuplicateDep("a".into()));

        let bad2 = "workload v2\nname X\ninput 4\ndep\nend\n";
        let e2 = WorkloadSpec::parse(bad2).unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::MissingField("dep layer"));
    }

    #[test]
    fn dependency_cycles_are_rejected_with_position() {
        let bad = "workload v2\nname X\ninput 4\n\
                   layer a fc 0 1 2 4 4 8 0\nlayer b fc 0 1 2 4 4 8 0\n\
                   dep a b\ndep b a\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 6);
        assert_eq!(e.column, 5);
        assert_eq!(e.kind, ParseErrorKind::CyclicDependency("a".into()));
        // A self-loop is the smallest cycle.
        let selfy = "workload v2\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\ndep a a\nend\n";
        let e2 = WorkloadSpec::parse(selfy).unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::CyclicDependency("a".into()));
        // Cycles through the implicit linear default are caught too:
        // b defaults to following a, and a explicitly depends on b.
        let implicit = "workload v2\nname X\ninput 4\n\
                        layer a fc 0 1 2 4 4 8 0\nlayer b fc 0 1 2 4 4 8 0\ndep a b\nend\n";
        let e3 = WorkloadSpec::parse(implicit).unwrap_err();
        assert_eq!(e3.line, 6);
        assert_eq!(e3.kind, ParseErrorKind::CyclicDependency("a".into()));
    }

    #[test]
    fn repeated_pred_mentions_collapse() {
        let noisy = "workload v2\nname X\ninput 4\n\
                     layer a fc 0 1 2 4 4 8 0\nlayer b fc 0 1 2 4 4 8 0\ndep b a a a\nend\n";
        let spec = WorkloadSpec::parse(noisy).unwrap();
        assert_eq!(spec.layers[1].deps, Some(vec!["a".to_string()]));
    }

    #[test]
    fn resolved_deps_rejects_hand_built_breakage() {
        let mut spec = WorkloadSpec::parse(TINY).unwrap();
        spec.layers[0].deps = Some(vec!["ghost".to_string()]);
        assert_eq!(
            spec.resolved_deps(),
            Err(DepError::Unknown {
                layer: "conv1".into(),
                dep: "ghost".into()
            })
        );
        spec.layers[0].deps = Some(vec!["fc1".to_string()]);
        // fc1 defaults to following conv1: a two-node cycle.
        assert!(matches!(spec.resolved_deps(), Err(DepError::Cycle(_))));
    }

    #[test]
    fn from_model_dag_exports_real_edges() {
        use voltascope_dnn::{Add, Conv2d, ModelBuilder, Relu, Shape, Source};
        // x -> conv -> relu -> add(relu, conv): a residual join.
        let mut b = ModelBuilder::new("res", Shape::new([1, 1, 3, 3]));
        let c = b.add("conv", Conv2d::new(1, 1, 1, 1, 0), &[Source::Input]);
        let r = b.add("relu", Relu, &[Source::Node(c)]);
        let a = b.add("add", Add, &[Source::Node(r), Source::Node(c)]);
        let model = b.finish(a);

        let dag = WorkloadSpec::from_model_dag(&model);
        assert_eq!(dag.version, 2);
        assert_eq!(dag.layers[0].deps, Some(vec![]));
        assert_eq!(dag.layers[1].deps, Some(vec!["conv".to_string()]));
        assert_eq!(
            dag.layers[2].deps,
            Some(vec!["relu".to_string(), "conv".to_string()])
        );
        assert_eq!(
            dag.resolved_deps().unwrap(),
            vec![vec![], vec![0], vec![1, 0]]
        );
        // The linear flattening is unchanged by the DAG variant.
        let linear = WorkloadSpec::from_model(&model);
        assert_eq!(linear.version, 1);
        for (d, l) in dag.layers.iter().zip(&linear.layers) {
            let mut d = d.clone();
            d.deps = None;
            assert_eq!(&d, l);
        }
        // And the DAG spec round-trips through text.
        assert_eq!(WorkloadSpec::parse(&dag.to_text()).unwrap(), dag);
    }
}
