//! The `.workload` schema: a small line-oriented text format that
//! describes a training workload as data — layer names and kinds,
//! per-layer FLOP and byte counts at batch 1, parameter bytes, and
//! parallelism axes — so that new model families are files under
//! `workloads/`, not Rust modules.
//!
//! # Grammar (v1)
//!
//! ```text
//! workload v1
//! name <display name, rest of line>
//! input <dim> [<dim> ...]          # canonical shape without the batch dim
//! axis pipeline <stages>           # optional, default 1
//! layer <name> <kind> <stage> <fp_flops> <bp_flops> <in_bytes> <out_bytes> <param_bytes> <tc>
//! ...
//! end
//! ```
//!
//! Blank lines and `#` comments are accepted anywhere; the canonical
//! serialisation ([`WorkloadSpec::to_text`]) emits neither, so a file
//! generated from a model byte-compares stably. All per-layer numbers
//! are batch-1 values; the lowering pass scales them (every layer kind
//! in the zoo is exactly linear in batch). `<tc>` is `1` if the layer's
//! kernels run on tensor cores, else `0`.
//!
//! The parser is hand-rolled and dependency-free in the discipline of
//! the `persist` codec: it never panics, and every malformed input maps
//! to a typed [`ParseError`] carrying the 1-based line and column of
//! the offending token.

use voltascope_dnn::Model;

/// Layer kinds a `.workload` file may declare. The CNN kinds mirror
/// [`voltascope_dnn::Layer::kind`]; the transformer kinds exist only as
/// data (no Rust layer module) — the simulator consumes FLOP/byte
/// counts, not semantics.
pub const KNOWN_KINDS: [&str; 12] = [
    "conv",
    "fc",
    "relu",
    "maxpool",
    "avgpool",
    "batchnorm",
    "concat",
    "add",
    "attention",
    "mlp",
    "layernorm",
    "embed",
];

/// One layer row of a workload spec (all counts at batch 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Layer name, unique within the workload (a single token).
    pub name: String,
    /// Layer kind, one of [`KNOWN_KINDS`].
    pub kind: String,
    /// Pipeline stage this layer is placed on (`< pipeline_stages`).
    pub stage: usize,
    /// Forward FLOPs for one sample.
    pub fp_flops: u64,
    /// Backward FLOPs for one sample.
    pub bp_flops: u64,
    /// Input activation bytes for one sample (sum over fan-in).
    pub in_bytes: u64,
    /// Output activation bytes for one sample.
    pub out_bytes: u64,
    /// Parameter bytes (f32 weights; also the gradient bucket size).
    pub param_bytes: u64,
    /// Whether the layer's kernels run on tensor cores.
    pub tensor_cores: bool,
}

/// A parsed workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Display name (may contain spaces, e.g. `Inception-v3`).
    pub name: String,
    /// Canonical per-sample input dims (without the batch dimension).
    pub input_dims: Vec<usize>,
    /// Number of pipeline-parallel stages (1 = no pipeline axis).
    pub pipeline_stages: usize,
    /// Layers in forward execution order.
    pub layers: Vec<LayerSpec>,
}

/// What went wrong at one spot of a `.workload` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The first line is not `workload v1`.
    BadHeader,
    /// A line starts with an unrecognised directive.
    UnknownDirective(String),
    /// A `layer` row names a kind outside [`KNOWN_KINDS`].
    UnknownLayerKind(String),
    /// An `axis` directive names an axis other than `pipeline`.
    UnknownAxis(String),
    /// Two `layer` rows share a name.
    DuplicateLayer(String),
    /// A singleton directive (`name`, `input`, `axis`) appears twice.
    DuplicateDirective(&'static str),
    /// `end` was reached without a required directive.
    MissingDirective(&'static str),
    /// A directive is missing a required field.
    MissingField(&'static str),
    /// A numeric field failed to parse (or is out of its domain).
    BadNumber(String),
    /// A layer's pipeline stage is `>=` the declared stage count.
    StageOutOfRange {
        /// The out-of-range stage the layer asked for.
        stage: usize,
        /// The declared stage count it must stay below.
        stages: usize,
    },
    /// The input ended before the `end` directive.
    Truncated,
    /// Non-comment content after the `end` directive.
    TrailingInput,
}

/// A parse failure with its position: 1-based line and column of the
/// offending token (column 1 for whole-line conditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub column: usize,
    /// What went wrong there.
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, column {}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::BadHeader => write!(f, "expected header `workload v1`"),
            ParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseErrorKind::UnknownLayerKind(k) => write!(f, "unknown layer kind `{k}`"),
            ParseErrorKind::UnknownAxis(a) => write!(f, "unknown parallelism axis `{a}`"),
            ParseErrorKind::DuplicateLayer(n) => write!(f, "duplicate layer name `{n}`"),
            ParseErrorKind::DuplicateDirective(d) => write!(f, "duplicate `{d}` directive"),
            ParseErrorKind::MissingDirective(d) => write!(f, "missing `{d}` directive"),
            ParseErrorKind::MissingField(field) => write!(f, "missing field `{field}`"),
            ParseErrorKind::BadNumber(t) => write!(f, "bad number `{t}`"),
            ParseErrorKind::StageOutOfRange { stage, stages } => write!(
                f,
                "pipeline stage {stage} out of range (workload declares {stages} stage(s))"
            ),
            ParseErrorKind::Truncated => write!(f, "file ends before `end` directive"),
            ParseErrorKind::TrailingInput => write!(f, "content after `end` directive"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Splits a line into `(1-based column, token)` pairs on ASCII
/// whitespace.
fn tokens(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        out.push((start + 1, &line[start..i]));
    }
    out
}

fn err(line: usize, column: usize, kind: ParseErrorKind) -> ParseError {
    ParseError { line, column, kind }
}

fn parse_u64(line: usize, col: usize, tok: &str) -> Result<u64, ParseError> {
    tok.parse::<u64>()
        .map_err(|_| err(line, col, ParseErrorKind::BadNumber(tok.to_string())))
}

fn parse_dim(line: usize, col: usize, tok: &str) -> Result<usize, ParseError> {
    match tok.parse::<usize>() {
        Ok(v) if v >= 1 => Ok(v),
        _ => Err(err(line, col, ParseErrorKind::BadNumber(tok.to_string()))),
    }
}

impl WorkloadSpec {
    /// Parses the v1 text format. Never panics; every malformed input
    /// yields a [`ParseError`] naming the offending line and column.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_workload::WorkloadSpec;
    ///
    /// let text = "workload v1\nname Tiny\ninput 1 8 8\naxis pipeline 1\n\
    ///             layer fc1 fc 0 1280 2560 256 40 2600 1\nend\n";
    /// let spec = WorkloadSpec::parse(text).unwrap();
    /// assert_eq!(spec.name, "Tiny");
    /// assert_eq!(spec.layers.len(), 1);
    /// assert_eq!(spec.to_text(), text.replace("            ", ""));
    /// ```
    pub fn parse(text: &str) -> Result<WorkloadSpec, ParseError> {
        let mut name: Option<String> = None;
        let mut input_dims: Option<Vec<usize>> = None;
        let mut stages: Option<usize> = None;
        // (line number, spec) per layer: stage range is validated once
        // the axis count is known, pointing back at the layer's line.
        let mut layers: Vec<(usize, LayerSpec)> = Vec::new();
        let mut seen_header = false;
        let mut seen_end: Option<usize> = None;
        let mut line_count = 0;

        for (li, raw) in text.lines().enumerate() {
            let lineno = li + 1;
            line_count = lineno;
            let toks = tokens(raw);
            let Some(&(col0, directive)) = toks.first() else {
                continue; // blank line
            };
            if directive.starts_with('#') {
                continue; // comment
            }
            if let Some(end_line) = seen_end {
                let _ = end_line;
                return Err(err(lineno, col0, ParseErrorKind::TrailingInput));
            }
            if !seen_header {
                if directive == "workload" && toks.get(1).map(|&(_, t)| t) == Some("v1") {
                    seen_header = true;
                    continue;
                }
                return Err(err(lineno, col0, ParseErrorKind::BadHeader));
            }
            match directive {
                "name" => {
                    if name.is_some() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::DuplicateDirective("name"),
                        ));
                    }
                    let Some(&(col1, _)) = toks.get(1) else {
                        return Err(err(lineno, col0, ParseErrorKind::MissingField("name")));
                    };
                    name = Some(raw[col1 - 1..].trim_end().to_string());
                }
                "input" => {
                    if input_dims.is_some() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::DuplicateDirective("input"),
                        ));
                    }
                    if toks.len() < 2 {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::MissingField("input dims"),
                        ));
                    }
                    let mut dims = Vec::with_capacity(toks.len() - 1);
                    for &(col, tok) in &toks[1..] {
                        dims.push(parse_dim(lineno, col, tok)?);
                    }
                    input_dims = Some(dims);
                }
                "axis" => {
                    let Some(&(acol, axis)) = toks.get(1) else {
                        return Err(err(lineno, col0, ParseErrorKind::MissingField("axis name")));
                    };
                    if axis != "pipeline" {
                        return Err(err(
                            lineno,
                            acol,
                            ParseErrorKind::UnknownAxis(axis.to_string()),
                        ));
                    }
                    if stages.is_some() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::DuplicateDirective("axis"),
                        ));
                    }
                    let Some(&(ncol, ntok)) = toks.get(2) else {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::MissingField("stage count"),
                        ));
                    };
                    stages = Some(parse_dim(lineno, ncol, ntok)?);
                }
                "layer" => {
                    const FIELDS: [&str; 9] = [
                        "layer name",
                        "layer kind",
                        "pipeline stage",
                        "fp_flops",
                        "bp_flops",
                        "in_bytes",
                        "out_bytes",
                        "param_bytes",
                        "tensor_cores",
                    ];
                    if toks.len() < 1 + FIELDS.len() {
                        return Err(err(
                            lineno,
                            col0,
                            ParseErrorKind::MissingField(FIELDS[toks.len() - 1]),
                        ));
                    }
                    let (ncol, lname) = toks[1];
                    let _ = ncol;
                    if layers.iter().any(|(_, l)| l.name == lname) {
                        return Err(err(
                            lineno,
                            toks[1].0,
                            ParseErrorKind::DuplicateLayer(lname.to_string()),
                        ));
                    }
                    let (kcol, kind) = toks[2];
                    if !KNOWN_KINDS.contains(&kind) {
                        return Err(err(
                            lineno,
                            kcol,
                            ParseErrorKind::UnknownLayerKind(kind.to_string()),
                        ));
                    }
                    let stage = parse_u64(lineno, toks[3].0, toks[3].1)? as usize;
                    let fp_flops = parse_u64(lineno, toks[4].0, toks[4].1)?;
                    let bp_flops = parse_u64(lineno, toks[5].0, toks[5].1)?;
                    let in_bytes = parse_u64(lineno, toks[6].0, toks[6].1)?;
                    let out_bytes = parse_u64(lineno, toks[7].0, toks[7].1)?;
                    let param_bytes = parse_u64(lineno, toks[8].0, toks[8].1)?;
                    let tensor_cores = match toks[9].1 {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(err(
                                lineno,
                                toks[9].0,
                                ParseErrorKind::BadNumber(other.to_string()),
                            ))
                        }
                    };
                    layers.push((
                        lineno,
                        LayerSpec {
                            name: lname.to_string(),
                            kind: kind.to_string(),
                            stage,
                            fp_flops,
                            bp_flops,
                            in_bytes,
                            out_bytes,
                            param_bytes,
                            tensor_cores,
                        },
                    ));
                }
                "end" => {
                    if name.is_none() {
                        return Err(err(lineno, col0, ParseErrorKind::MissingDirective("name")));
                    }
                    if input_dims.is_none() {
                        return Err(err(lineno, col0, ParseErrorKind::MissingDirective("input")));
                    }
                    seen_end = Some(lineno);
                }
                other => {
                    return Err(err(
                        lineno,
                        col0,
                        ParseErrorKind::UnknownDirective(other.to_string()),
                    ));
                }
            }
        }

        if seen_end.is_none() {
            return Err(err(line_count + 1, 1, ParseErrorKind::Truncated));
        }
        let pipeline_stages = stages.unwrap_or(1);
        for (lineno, l) in &layers {
            if l.stage >= pipeline_stages {
                return Err(err(
                    *lineno,
                    1,
                    ParseErrorKind::StageOutOfRange {
                        stage: l.stage,
                        stages: pipeline_stages,
                    },
                ));
            }
        }
        Ok(WorkloadSpec {
            name: name.expect("checked at end"),
            input_dims: input_dims.expect("checked at end"),
            pipeline_stages,
            layers: layers.into_iter().map(|(_, l)| l).collect(),
        })
    }

    /// Serialises to the canonical v1 text: no comments, no blank
    /// lines, one space between fields, the `axis pipeline` line always
    /// present. `parse(to_text(s)) == s` for every valid spec.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("workload v1\n");
        writeln!(out, "name {}", self.name).unwrap();
        out.push_str("input");
        for d in &self.input_dims {
            write!(out, " {d}").unwrap();
        }
        out.push('\n');
        writeln!(out, "axis pipeline {}", self.pipeline_stages).unwrap();
        for l in &self.layers {
            writeln!(
                out,
                "layer {} {} {} {} {} {} {} {} {}",
                l.name,
                l.kind,
                l.stage,
                l.fp_flops,
                l.bp_flops,
                l.in_bytes,
                l.out_bytes,
                l.param_bytes,
                u8::from(l.tensor_cores),
            )
            .unwrap();
        }
        out.push_str("end\n");
        out
    }

    /// Extracts the declarative spec of a built [`Model`]: batch-1
    /// FLOP/byte counts per layer, no pipeline axis. This is how the
    /// checked-in zoo `.workload` files are generated, and the anchor
    /// of the builder-vs-data byte-identity tests.
    pub fn from_model(model: &Model) -> WorkloadSpec {
        let layers = model
            .layer_info()
            .into_iter()
            .map(|li| LayerSpec {
                name: li.name,
                kind: li.kind.to_string(),
                stage: 0,
                fp_flops: li.fp_flops,
                bp_flops: li.bp_flops,
                in_bytes: li.in_bytes,
                out_bytes: li.out_bytes,
                param_bytes: li.param_bytes,
                tensor_cores: li.tensor_cores,
            })
            .collect();
        WorkloadSpec {
            name: model.name().to_string(),
            input_dims: model.input_shape().dims()[1..].to_vec(),
            pipeline_stages: 1,
            layers,
        }
    }

    /// Total parameter bytes across all layers.
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// The layers placed on pipeline stage `s`, in forward order.
    pub fn stage_layers(&self, s: usize) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(move |l| l.stage == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "workload v1\n\
                        name Tiny Net\n\
                        input 3 8 8\n\
                        axis pipeline 2\n\
                        layer conv1 conv 0 1000 2000 768 1024 432 1\n\
                        layer fc1 fc 1 500 1000 1024 40 41000 1\n\
                        end\n";

    #[test]
    fn parses_and_round_trips() {
        let spec = WorkloadSpec::parse(TINY).unwrap();
        assert_eq!(spec.name, "Tiny Net");
        assert_eq!(spec.input_dims, vec![3, 8, 8]);
        assert_eq!(spec.pipeline_stages, 2);
        assert_eq!(spec.layers.len(), 2);
        assert_eq!(spec.layers[1].stage, 1);
        assert!(spec.layers[0].tensor_cores);
        let text = spec.to_text();
        assert_eq!(WorkloadSpec::parse(&text).unwrap(), spec);
        assert_eq!(text, TINY);
    }

    #[test]
    fn accepts_comments_and_blank_lines() {
        let noisy = "# generated\n\nworkload v1\nname N\n# dims\ninput 4\n\n\
                     layer a fc 0 1 2 4 4 8 0\nend\n\n# tail comment\n";
        let spec = WorkloadSpec::parse(noisy).unwrap();
        assert_eq!(spec.name, "N");
        assert_eq!(spec.pipeline_stages, 1);
    }

    #[test]
    fn header_must_come_first() {
        let e = WorkloadSpec::parse("name X\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::BadHeader);
    }

    #[test]
    fn truncated_file_is_typed() {
        let e = WorkloadSpec::parse("workload v1\nname X\ninput 4\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Truncated);
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn unknown_layer_kind_names_the_line() {
        let bad = "workload v1\nname X\ninput 4\nlayer a warp 0 1 2 4 4 8 0\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.kind, ParseErrorKind::UnknownLayerKind("warp".into()));
        assert_eq!(e.column, 9);
    }

    #[test]
    fn duplicate_layer_name_is_rejected() {
        let bad =
            "workload v1\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nlayer a fc 0 1 2 4 4 8 0\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.kind, ParseErrorKind::DuplicateLayer("a".into()));
    }

    #[test]
    fn stage_out_of_range_points_at_the_layer() {
        let bad = "workload v1\nname X\ninput 4\naxis pipeline 2\nlayer a fc 2 1 2 4 4 8 0\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(
            e.kind,
            ParseErrorKind::StageOutOfRange {
                stage: 2,
                stages: 2
            }
        );
        // Without an axis directive the default single stage applies.
        let bad1 = "workload v1\nname X\ninput 4\nlayer a fc 1 1 2 4 4 8 0\nend\n";
        let e1 = WorkloadSpec::parse(bad1).unwrap_err();
        assert_eq!(
            e1.kind,
            ParseErrorKind::StageOutOfRange {
                stage: 1,
                stages: 1
            }
        );
    }

    #[test]
    fn bad_numbers_and_missing_fields() {
        let bad = "workload v1\nname X\ninput 4\nlayer a fc 0 1 2 4 4 8\nend\n";
        let e = WorkloadSpec::parse(bad).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MissingField("tensor_cores"));
        let bad2 = "workload v1\nname X\ninput 4\nlayer a fc 0 one 2 4 4 8 0\nend\n";
        let e2 = WorkloadSpec::parse(bad2).unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::BadNumber("one".into()));
        let bad3 = "workload v1\nname X\ninput 0\nend\n";
        let e3 = WorkloadSpec::parse(bad3).unwrap_err();
        assert_eq!(e3.kind, ParseErrorKind::BadNumber("0".into()));
    }

    #[test]
    fn unknown_directive_and_axis() {
        let e = WorkloadSpec::parse("workload v1\nshape 4\nend\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownDirective("shape".into()));
        let e2 = WorkloadSpec::parse("workload v1\naxis tensor 4\nend\n").unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::UnknownAxis("tensor".into()));
    }

    #[test]
    fn end_requires_name_and_input() {
        let e = WorkloadSpec::parse("workload v1\ninput 4\nend\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MissingDirective("name"));
        let e2 = WorkloadSpec::parse("workload v1\nname X\nend\n").unwrap_err();
        assert_eq!(e2.kind, ParseErrorKind::MissingDirective("input"));
    }

    #[test]
    fn trailing_content_is_rejected() {
        let e = WorkloadSpec::parse("workload v1\nname X\ninput 4\nend\nname Y\n").unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.kind, ParseErrorKind::TrailingInput);
    }

    #[test]
    fn duplicate_directives_are_rejected() {
        let e = WorkloadSpec::parse("workload v1\nname X\nname Y\nend\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateDirective("name"));
    }
}
