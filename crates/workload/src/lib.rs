//! # voltascope-workload — workloads as data
//!
//! The declarative workload layer of the reproduction: a `.workload`
//! text schema ([`WorkloadSpec::parse`]), a lowering pass compiling a
//! spec into the per-layer kernel/bucket profile `simulate_epoch`
//! executes ([`lower`]/[`lower_model`]), and a [`Definition`] handle
//! that lets the grid machinery treat built-in Rust builders and
//! parsed data files interchangeably.
//!
//! # Example
//!
//! ```
//! use voltascope_workload::{lower, WorkloadSpec};
//!
//! let text = "workload v1\n\
//!             name Toy\n\
//!             input 1 28 28\n\
//!             layer conv1 conv 0 117600 235200 3136 18816 624 1\n\
//!             layer fc1 fc 0 94080 188160 18816 40 188170 1\n\
//!             end\n";
//! let spec = WorkloadSpec::parse(text).unwrap();
//! let lowered = lower(&spec, 16).unwrap();
//! assert_eq!(lowered.kernels.len(), 4); // 2 FP + 2 BP
//! assert_eq!(lowered.buckets.len(), 2); // both layers carry weights
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lower;
mod schema;

pub use lower::{lower, lower_model, LowerError, LoweredDag, LoweredWorkload};
pub use schema::{DepError, LayerSpec, ParseError, ParseErrorKind, WorkloadSpec, KNOWN_KINDS};

use std::sync::Arc;

use voltascope_dnn::Model;

/// Where a workload's definition comes from: a Rust builder, a parsed
/// `.workload` spec, or both (the spec drives timing, the model stays
/// available for memory/census queries and cross-checking).
#[derive(Debug, Clone)]
pub enum Definition {
    /// A model built in Rust (the zoo builders).
    Builder(Arc<Model>),
    /// A parsed data file; no Rust model exists.
    Data(Arc<WorkloadSpec>),
    /// A data file paired with the builder it was extracted from: the
    /// spec is lowered for timing, the model retained as the golden
    /// cross-check and for model-level queries.
    Checked {
        /// The built model.
        model: Arc<Model>,
        /// The parsed spec that timing lowers from.
        spec: Arc<WorkloadSpec>,
    },
}

impl Definition {
    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            Definition::Builder(m) => m.name(),
            Definition::Data(s) => &s.name,
            Definition::Checked { spec, .. } => &spec.name,
        }
    }

    /// The built model, if this definition has one (data-only
    /// workloads do not).
    pub fn model(&self) -> Option<&Model> {
        match self {
            Definition::Builder(m) => Some(m),
            Definition::Data(_) => None,
            Definition::Checked { model, .. } => Some(model),
        }
    }

    /// The parsed spec, if this definition has one.
    pub fn spec(&self) -> Option<&WorkloadSpec> {
        match self {
            Definition::Builder(_) => None,
            Definition::Data(s) => Some(s),
            Definition::Checked { spec, .. } => Some(spec),
        }
    }

    /// Lowers the definition for `batch` samples per GPU. `Checked`
    /// definitions lower from the spec — that is the point of the
    /// data-driven path — and rely on the equivalence tests to keep
    /// spec and model interchangeable.
    pub fn lowered(&self, batch: usize) -> Result<LoweredWorkload, LowerError> {
        match self {
            Definition::Builder(m) => lower_model(m, batch),
            Definition::Data(s) => lower(s, batch),
            Definition::Checked { spec, .. } => lower(spec, batch),
        }
    }
}

impl From<Model> for Definition {
    fn from(m: Model) -> Self {
        Definition::Builder(Arc::new(m))
    }
}

impl From<WorkloadSpec> for Definition {
    fn from(s: WorkloadSpec) -> Self {
        Definition::Data(Arc::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::zoo;

    #[test]
    fn definition_routes_lowering_by_source() {
        let model = zoo::lenet();
        let spec = WorkloadSpec::from_model(&model);
        let builder: Definition = zoo::lenet().into();
        let data: Definition = spec.clone().into();
        let checked = Definition::Checked {
            model: Arc::new(zoo::lenet()),
            spec: Arc::new(spec),
        };
        assert_eq!(builder.name(), "LeNet");
        assert_eq!(data.name(), "LeNet");
        assert!(builder.model().is_some());
        assert!(data.model().is_none());
        assert!(checked.model().is_some());
        assert!(checked.spec().is_some());
        let a = builder.lowered(32).unwrap();
        let b = data.lowered(32).unwrap();
        let c = checked.lowered(32).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
