//! Lowering: compiling a workload description into the kernel/bucket
//! profile the epoch simulator executes.
//!
//! Both front ends converge on [`LoweredWorkload`]:
//!
//! * [`lower`] scales a parsed [`WorkloadSpec`]'s batch-1 counts to the
//!   requested batch (every zoo layer kind is exactly linear in batch,
//!   so this reproduces the builder numbers bit for bit), and
//! * [`lower_model`] asks a built [`Model`] directly via
//!   [`Model::kernel_profile`]/[`Model::gradient_buckets`].
//!
//! Degenerate inputs that previously panicked deep inside the task
//! graph (batch 0, empty models) or silently produced zero-cost
//! kernels are rejected here with typed [`LowerError`]s.

use voltascope_dnn::{GradientBucket, KernelDesc, Model, Shape, Stage};

use crate::schema::WorkloadSpec;

/// A workload compiled for one per-GPU batch size: exactly the inputs
/// `simulate_epoch` consumes when assembling its task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredWorkload {
    /// Workload display name.
    pub name: String,
    /// The per-GPU batch size the kernels below are scaled to.
    pub batch: usize,
    /// Canonical input shape at batch 1 (drives H2D mini-batch bytes).
    pub input_shape: Shape,
    /// Total parameter bytes (initial weight distribution volume).
    pub param_bytes: u64,
    /// One training iteration's kernels: FP in layer order, then BP in
    /// reverse layer order, as cuDNN issues them.
    pub kernels: Vec<KernelDesc>,
    /// Per-layer gradient buckets in backward-completion order (last
    /// layer first), before any fusion.
    pub buckets: Vec<GradientBucket>,
}

/// Why a workload could not be lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The requested batch size is zero.
    ZeroBatch,
    /// The workload has no layers.
    EmptyWorkload(String),
    /// Two layers share a name (bucket readiness is keyed by name).
    DuplicateLayerName {
        /// Workload name.
        workload: String,
        /// The repeated layer name.
        layer: String,
    },
    /// A layer declares zero FLOPs and zero bytes: it would lower to a
    /// silent zero-cost kernel.
    ZeroCostLayer {
        /// Workload name.
        workload: String,
        /// The offending layer.
        layer: String,
    },
    /// No layer carries parameters, so every gradient bucket would be
    /// zero bytes and the weight-update stage degenerate.
    NoParameters(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Matches the message `simulate_epoch` has always panicked
            // with on a zero batch.
            LowerError::ZeroBatch => write!(f, "batch size must be positive"),
            LowerError::EmptyWorkload(w) => write!(f, "workload `{w}` has no layers"),
            LowerError::DuplicateLayerName { workload, layer } => {
                write!(f, "workload `{workload}` repeats layer name `{layer}`")
            }
            LowerError::ZeroCostLayer { workload, layer } => write!(
                f,
                "layer `{layer}` of workload `{workload}` has zero FLOPs and zero bytes"
            ),
            LowerError::NoParameters(w) => {
                write!(f, "workload `{w}` has no parameters to communicate")
            }
        }
    }
}

impl std::error::Error for LowerError {}

fn check_names_and_costs<'a>(
    workload: &str,
    rows: impl Iterator<Item = (&'a str, u64, u64)>,
) -> Result<(), LowerError> {
    let mut seen = std::collections::HashSet::new();
    for (name, flops, bytes) in rows {
        if !seen.insert(name.to_string()) {
            return Err(LowerError::DuplicateLayerName {
                workload: workload.to_string(),
                layer: name.to_string(),
            });
        }
        if flops == 0 && bytes == 0 {
            return Err(LowerError::ZeroCostLayer {
                workload: workload.to_string(),
                layer: name.to_string(),
            });
        }
    }
    Ok(())
}

/// Lowers a parsed spec to the kernel/bucket profile for `batch`
/// samples per GPU.
///
/// # Example
///
/// ```
/// use voltascope_workload::{lower, WorkloadSpec};
///
/// let spec = WorkloadSpec::parse(
///     "workload v1\nname T\ninput 4\nlayer fc1 fc 0 160 320 16 40 336 1\nend\n",
/// )
/// .unwrap();
/// let lw = lower(&spec, 8).unwrap();
/// assert_eq!(lw.kernels.len(), 2); // fp.fc1, bp.fc1
/// assert_eq!(lw.kernels[0].flops, 8 * 160);
/// assert_eq!(lw.buckets[0].bytes, 336);
/// ```
pub fn lower(spec: &WorkloadSpec, batch: usize) -> Result<LoweredWorkload, LowerError> {
    if batch == 0 {
        return Err(LowerError::ZeroBatch);
    }
    if spec.layers.is_empty() {
        return Err(LowerError::EmptyWorkload(spec.name.clone()));
    }
    check_names_and_costs(
        &spec.name,
        spec.layers
            .iter()
            .map(|l| (l.name.as_str(), l.fp_flops, l.in_bytes + l.out_bytes)),
    )?;
    if spec.param_bytes() == 0 {
        return Err(LowerError::NoParameters(spec.name.clone()));
    }
    let b = batch as u64;
    let mut kernels = Vec::with_capacity(spec.layers.len() * 2);
    for l in &spec.layers {
        kernels.push(KernelDesc {
            name: format!("fp.{}", l.name),
            stage: Stage::Forward,
            flops: b * l.fp_flops,
            bytes: b * (l.in_bytes + l.out_bytes),
            tensor_cores: l.tensor_cores,
        });
    }
    for l in spec.layers.iter().rev() {
        kernels.push(KernelDesc {
            name: format!("bp.{}", l.name),
            stage: Stage::Backward,
            flops: b * l.bp_flops,
            bytes: 2 * b * (l.in_bytes + l.out_bytes),
            tensor_cores: l.tensor_cores,
        });
    }
    let buckets = spec
        .layers
        .iter()
        .rev()
        .filter(|l| l.param_bytes > 0)
        .map(|l| GradientBucket {
            name: l.name.clone(),
            bytes: l.param_bytes,
        })
        .collect();
    let mut input_dims = Vec::with_capacity(spec.input_dims.len() + 1);
    input_dims.push(1);
    input_dims.extend_from_slice(&spec.input_dims);
    Ok(LoweredWorkload {
        name: spec.name.clone(),
        batch,
        input_shape: Shape::new(input_dims),
        param_bytes: spec.param_bytes(),
        kernels,
        buckets,
    })
}

/// Lowers a built model directly, bypassing the text schema. The
/// output is definitionally what `simulate_epoch` consumed before the
/// workload layer existed — [`Model::kernel_profile`] and
/// [`Model::gradient_buckets`] verbatim — so existing goldens cannot
/// move.
pub fn lower_model(model: &Model, batch: usize) -> Result<LoweredWorkload, LowerError> {
    if batch == 0 {
        return Err(LowerError::ZeroBatch);
    }
    let info = model.layer_info();
    if info.is_empty() {
        return Err(LowerError::EmptyWorkload(model.name().to_string()));
    }
    check_names_and_costs(
        model.name(),
        info.iter()
            .map(|li| (li.name.as_str(), li.fp_flops, li.in_bytes + li.out_bytes)),
    )?;
    if model.param_bytes() == 0 {
        return Err(LowerError::NoParameters(model.name().to_string()));
    }
    Ok(LoweredWorkload {
        name: model.name().to_string(),
        batch,
        input_shape: model.input_shape().clone(),
        param_bytes: model.param_bytes(),
        kernels: model.kernel_profile(batch),
        buckets: model.gradient_buckets(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::zoo;

    fn spec(text: &str) -> WorkloadSpec {
        WorkloadSpec::parse(text).unwrap()
    }

    #[test]
    fn zero_batch_is_typed() {
        let s = spec("workload v1\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nend\n");
        assert_eq!(lower(&s, 0), Err(LowerError::ZeroBatch));
        assert_eq!(
            lower(&s, 0).unwrap_err().to_string(),
            "batch size must be positive"
        );
        let m = zoo::lenet();
        assert_eq!(lower_model(&m, 0), Err(LowerError::ZeroBatch));
    }

    #[test]
    fn empty_workload_is_typed() {
        let s = spec("workload v1\nname Hollow\ninput 4\nend\n");
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::EmptyWorkload("Hollow".into()))
        );
    }

    #[test]
    fn zero_cost_layer_is_typed() {
        let s = spec(
            "workload v1\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nlayer b relu 0 0 0 0 0 0 0\nend\n",
        );
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::ZeroCostLayer {
                workload: "T".into(),
                layer: "b".into()
            })
        );
    }

    #[test]
    fn parameterless_workload_is_typed() {
        let s = spec("workload v1\nname T\ninput 4\nlayer a relu 0 16 32 16 16 0 0\nend\n");
        assert_eq!(lower(&s, 1), Err(LowerError::NoParameters("T".into())));
    }

    #[test]
    fn duplicate_names_in_hand_built_spec_are_typed() {
        // The parser already rejects duplicates; a hand-constructed
        // spec must still fail to lower rather than corrupt bucket
        // readiness (which is keyed by layer name).
        let mut s = spec("workload v1\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nend\n");
        let dup = s.layers[0].clone();
        s.layers.push(dup);
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::DuplicateLayerName {
                workload: "T".into(),
                layer: "a".into()
            })
        );
    }

    #[test]
    fn lowered_model_matches_kernel_profile() {
        let m = zoo::lenet();
        let lw = lower_model(&m, 16).unwrap();
        assert_eq!(lw.kernels, m.kernel_profile(16));
        assert_eq!(lw.buckets, m.gradient_buckets());
        assert_eq!(lw.param_bytes, m.param_bytes());
        assert_eq!(&lw.input_shape, m.input_shape());
    }

    #[test]
    fn spec_lowering_matches_model_lowering() {
        // The load-bearing identity: a spec extracted from a model
        // lowers to the exact kernels/buckets the model produces, at
        // every batch size (linearity in batch is exact).
        for batch in [1usize, 16, 32, 64] {
            let m = zoo::lenet();
            let s = WorkloadSpec::from_model(&m);
            assert_eq!(lower(&s, batch).unwrap(), lower_model(&m, batch).unwrap());
        }
    }
}
