//! Lowering: compiling a workload description into the kernel/bucket
//! profile the epoch simulator executes.
//!
//! Both front ends converge on [`LoweredWorkload`]:
//!
//! * [`lower`] scales a parsed [`WorkloadSpec`]'s batch-1 counts to the
//!   requested batch (every zoo layer kind is exactly linear in batch,
//!   so this reproduces the builder numbers bit for bit), and
//! * [`lower_model`] asks a built [`Model`] directly via
//!   [`Model::kernel_profile`]/[`Model::gradient_buckets`].
//!
//! Degenerate inputs that previously panicked deep inside the task
//! graph (batch 0, empty models) or silently produced zero-cost
//! kernels are rejected here with typed [`LowerError`]s.

use voltascope_dnn::{GradientBucket, KernelDesc, Model, Shape, Stage};

use crate::schema::{DepError, WorkloadSpec};

/// The layer-level dependency structure of a lowered v2 workload with
/// explicit `dep` edges. Indices are layer indices in spec order —
/// which is also the FP-kernel index order in
/// [`LoweredWorkload::kernels`] (the BP kernel for layer `i` of `n`
/// sits at kernel index `2n - 1 - i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredDag {
    /// `preds[i]`: layers whose outputs layer `i` consumes. Empty
    /// means the layer reads the external input.
    pub preds: Vec<Vec<usize>>,
    /// `succs[i]`: layers consuming layer `i`'s output (transpose of
    /// `preds`).
    pub succs: Vec<Vec<usize>>,
    /// `edge_bytes[i][j]`: activation bytes flowing over the edge
    /// `preds[i][j] -> i` at the lowered batch — the predecessor's
    /// `out_bytes` scaled by batch. Fan-in totals are per-edge sums,
    /// not the flattened `in_bytes` aggregate.
    pub edge_bytes: Vec<Vec<u64>>,
}

/// A workload compiled for one per-GPU batch size: exactly the inputs
/// `simulate_epoch` consumes when assembling its task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredWorkload {
    /// Workload display name.
    pub name: String,
    /// The per-GPU batch size the kernels below are scaled to.
    pub batch: usize,
    /// Canonical input shape at batch 1 (drives H2D mini-batch bytes).
    pub input_shape: Shape,
    /// Total parameter bytes (initial weight distribution volume).
    pub param_bytes: u64,
    /// One training iteration's kernels: FP in layer order, then BP in
    /// reverse layer order, as cuDNN issues them.
    pub kernels: Vec<KernelDesc>,
    /// Per-layer gradient buckets in backward-completion order (last
    /// layer first), before any fusion.
    pub buckets: Vec<GradientBucket>,
    /// Layer-level dependency edges, present only when the spec
    /// carries explicit v2 `dep` directives. `None` (v1 files,
    /// edge-free v2 files, builder models) means the linear chain:
    /// layer `i` follows layer `i - 1`.
    pub dag: Option<LoweredDag>,
}

/// Why a workload could not be lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The requested batch size is zero.
    ZeroBatch,
    /// The workload has no layers.
    EmptyWorkload(String),
    /// Two layers share a name (bucket readiness is keyed by name).
    DuplicateLayerName {
        /// Workload name.
        workload: String,
        /// The repeated layer name.
        layer: String,
    },
    /// A layer declares zero FLOPs and zero bytes: it would lower to a
    /// silent zero-cost kernel.
    ZeroCostLayer {
        /// Workload name.
        workload: String,
        /// The offending layer.
        layer: String,
    },
    /// No layer carries parameters, so every gradient bucket would be
    /// zero bytes and the weight-update stage degenerate.
    NoParameters(String),
    /// Scaling the layer's parser-accepted `u64` counts to the
    /// requested batch does not fit in `u64`. Surfaced as a typed
    /// error instead of a debug panic / release wrap-around.
    ArithmeticOverflow {
        /// Workload name.
        workload: String,
        /// The layer whose scaled counts overflow.
        layer: String,
    },
    /// A hand-built spec's `deps` names a layer that does not exist
    /// (parser-produced specs are validated at parse time).
    UnknownDependency {
        /// The layer whose `deps` list is broken.
        layer: String,
        /// The name that resolved to nothing.
        dep: String,
    },
    /// The dependency edges form a cycle through this layer.
    CyclicDependencies(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Matches the message `simulate_epoch` has always panicked
            // with on a zero batch.
            LowerError::ZeroBatch => write!(f, "batch size must be positive"),
            LowerError::EmptyWorkload(w) => write!(f, "workload `{w}` has no layers"),
            LowerError::DuplicateLayerName { workload, layer } => {
                write!(f, "workload `{workload}` repeats layer name `{layer}`")
            }
            LowerError::ZeroCostLayer { workload, layer } => write!(
                f,
                "layer `{layer}` of workload `{workload}` has zero FLOPs and zero bytes"
            ),
            LowerError::NoParameters(w) => {
                write!(f, "workload `{w}` has no parameters to communicate")
            }
            LowerError::ArithmeticOverflow { workload, layer } => write!(
                f,
                "lowering layer `{layer}` of workload `{workload}` overflows u64"
            ),
            LowerError::UnknownDependency { layer, dep } => {
                write!(f, "layer `{layer}` depends on unknown layer `{dep}`")
            }
            LowerError::CyclicDependencies(layer) => {
                write!(f, "dependency cycle through layer `{layer}`")
            }
        }
    }
}

impl std::error::Error for LowerError {}

impl From<DepError> for LowerError {
    fn from(e: DepError) -> Self {
        match e {
            DepError::Unknown { layer, dep } => LowerError::UnknownDependency { layer, dep },
            DepError::Cycle(layer) => LowerError::CyclicDependencies(layer),
        }
    }
}

fn check_names_and_costs<'a>(
    workload: &str,
    rows: impl Iterator<Item = (&'a str, u64, u64)>,
) -> Result<(), LowerError> {
    let mut seen = std::collections::HashSet::new();
    for (name, flops, bytes) in rows {
        if !seen.insert(name.to_string()) {
            return Err(LowerError::DuplicateLayerName {
                workload: workload.to_string(),
                layer: name.to_string(),
            });
        }
        if flops == 0 && bytes == 0 {
            return Err(LowerError::ZeroCostLayer {
                workload: workload.to_string(),
                layer: name.to_string(),
            });
        }
    }
    Ok(())
}

/// Lowers a parsed spec to the kernel/bucket profile for `batch`
/// samples per GPU.
///
/// # Example
///
/// ```
/// use voltascope_workload::{lower, WorkloadSpec};
///
/// let spec = WorkloadSpec::parse(
///     "workload v1\nname T\ninput 4\nlayer fc1 fc 0 160 320 16 40 336 1\nend\n",
/// )
/// .unwrap();
/// let lw = lower(&spec, 8).unwrap();
/// assert_eq!(lw.kernels.len(), 2); // fp.fc1, bp.fc1
/// assert_eq!(lw.kernels[0].flops, 8 * 160);
/// assert_eq!(lw.buckets[0].bytes, 336);
/// ```
pub fn lower(spec: &WorkloadSpec, batch: usize) -> Result<LoweredWorkload, LowerError> {
    if batch == 0 {
        return Err(LowerError::ZeroBatch);
    }
    if spec.layers.is_empty() {
        return Err(LowerError::EmptyWorkload(spec.name.clone()));
    }
    check_names_and_costs(
        &spec.name,
        spec.layers
            .iter()
            // Saturating is fine for the zero test: a sum only
            // saturates when it is enormous, never when it is zero.
            .map(|l| {
                (
                    l.name.as_str(),
                    l.fp_flops,
                    l.in_bytes.saturating_add(l.out_bytes),
                )
            }),
    )?;
    let overflow = |layer: &str| LowerError::ArithmeticOverflow {
        workload: spec.name.clone(),
        layer: layer.to_string(),
    };
    let mut param_bytes = 0u64;
    for l in &spec.layers {
        param_bytes = param_bytes
            .checked_add(l.param_bytes)
            .ok_or_else(|| overflow(&l.name))?;
    }
    if param_bytes == 0 {
        return Err(LowerError::NoParameters(spec.name.clone()));
    }
    let b = batch as u64;
    // Per-layer activation traffic at the requested batch; all scaling
    // of the parser-accepted u64 fields is checked, surfacing a typed
    // error rather than a debug panic / release wrap-around.
    let act_bytes = |l: &crate::schema::LayerSpec| {
        l.in_bytes
            .checked_add(l.out_bytes)
            .and_then(|s| s.checked_mul(b))
            .ok_or_else(|| overflow(&l.name))
    };
    let mut kernels = Vec::with_capacity(spec.layers.len() * 2);
    for l in &spec.layers {
        kernels.push(KernelDesc {
            name: format!("fp.{}", l.name),
            stage: Stage::Forward,
            flops: b.checked_mul(l.fp_flops).ok_or_else(|| overflow(&l.name))?,
            bytes: act_bytes(l)?,
            tensor_cores: l.tensor_cores,
        });
    }
    for l in spec.layers.iter().rev() {
        kernels.push(KernelDesc {
            name: format!("bp.{}", l.name),
            stage: Stage::Backward,
            flops: b.checked_mul(l.bp_flops).ok_or_else(|| overflow(&l.name))?,
            bytes: act_bytes(l)?
                .checked_mul(2)
                .ok_or_else(|| overflow(&l.name))?,
            tensor_cores: l.tensor_cores,
        });
    }
    let buckets = spec
        .layers
        .iter()
        .rev()
        .filter(|l| l.param_bytes > 0)
        .map(|l| GradientBucket {
            name: l.name.clone(),
            bytes: l.param_bytes,
        })
        .collect();
    let dag = if spec.has_explicit_deps() {
        let preds = spec.resolved_deps().map_err(LowerError::from)?;
        let n = spec.layers.len();
        let mut succs = vec![Vec::new(); n];
        let mut edge_bytes = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(i);
                let src = &spec.layers[p];
                edge_bytes[i].push(
                    src.out_bytes
                        .checked_mul(b)
                        .ok_or_else(|| overflow(&src.name))?,
                );
            }
        }
        Some(LoweredDag {
            preds,
            succs,
            edge_bytes,
        })
    } else {
        None
    };
    let mut input_dims = Vec::with_capacity(spec.input_dims.len() + 1);
    input_dims.push(1);
    input_dims.extend_from_slice(&spec.input_dims);
    Ok(LoweredWorkload {
        name: spec.name.clone(),
        batch,
        input_shape: Shape::new(input_dims),
        param_bytes,
        kernels,
        buckets,
        dag,
    })
}

/// Lowers a built model directly, bypassing the text schema. The
/// output is definitionally what `simulate_epoch` consumed before the
/// workload layer existed — [`Model::kernel_profile`] and
/// [`Model::gradient_buckets`] verbatim — so existing goldens cannot
/// move.
pub fn lower_model(model: &Model, batch: usize) -> Result<LoweredWorkload, LowerError> {
    if batch == 0 {
        return Err(LowerError::ZeroBatch);
    }
    let info = model.layer_info();
    if info.is_empty() {
        return Err(LowerError::EmptyWorkload(model.name().to_string()));
    }
    check_names_and_costs(
        model.name(),
        info.iter().map(|li| {
            (
                li.name.as_str(),
                li.fp_flops,
                li.in_bytes.saturating_add(li.out_bytes),
            )
        }),
    )?;
    if model.param_bytes() == 0 {
        return Err(LowerError::NoParameters(model.name().to_string()));
    }
    Ok(LoweredWorkload {
        name: model.name().to_string(),
        batch,
        input_shape: model.input_shape().clone(),
        param_bytes: model.param_bytes(),
        kernels: model.kernel_profile(batch),
        buckets: model.gradient_buckets(),
        // Builder models always lower to the historical linear chain;
        // DAG execution is opted into via `WorkloadSpec::from_model_dag`
        // and the data path.
        dag: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::zoo;

    fn spec(text: &str) -> WorkloadSpec {
        WorkloadSpec::parse(text).unwrap()
    }

    #[test]
    fn zero_batch_is_typed() {
        let s = spec("workload v1\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nend\n");
        assert_eq!(lower(&s, 0), Err(LowerError::ZeroBatch));
        assert_eq!(
            lower(&s, 0).unwrap_err().to_string(),
            "batch size must be positive"
        );
        let m = zoo::lenet();
        assert_eq!(lower_model(&m, 0), Err(LowerError::ZeroBatch));
    }

    #[test]
    fn empty_workload_is_typed() {
        let s = spec("workload v1\nname Hollow\ninput 4\nend\n");
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::EmptyWorkload("Hollow".into()))
        );
    }

    #[test]
    fn zero_cost_layer_is_typed() {
        let s = spec(
            "workload v1\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nlayer b relu 0 0 0 0 0 0 0\nend\n",
        );
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::ZeroCostLayer {
                workload: "T".into(),
                layer: "b".into()
            })
        );
    }

    #[test]
    fn parameterless_workload_is_typed() {
        let s = spec("workload v1\nname T\ninput 4\nlayer a relu 0 16 32 16 16 0 0\nend\n");
        assert_eq!(lower(&s, 1), Err(LowerError::NoParameters("T".into())));
    }

    #[test]
    fn duplicate_names_in_hand_built_spec_are_typed() {
        // The parser already rejects duplicates; a hand-constructed
        // spec must still fail to lower rather than corrupt bucket
        // readiness (which is keyed by layer name).
        let mut s = spec("workload v1\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nend\n");
        let dup = s.layers[0].clone();
        s.layers.push(dup);
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::DuplicateLayerName {
                workload: "T".into(),
                layer: "a".into()
            })
        );
    }

    #[test]
    fn lowered_model_matches_kernel_profile() {
        let m = zoo::lenet();
        let lw = lower_model(&m, 16).unwrap();
        assert_eq!(lw.kernels, m.kernel_profile(16));
        assert_eq!(lw.buckets, m.gradient_buckets());
        assert_eq!(lw.param_bytes, m.param_bytes());
        assert_eq!(&lw.input_shape, m.input_shape());
    }

    #[test]
    fn spec_lowering_matches_model_lowering() {
        // The load-bearing identity: a spec extracted from a model
        // lowers to the exact kernels/buckets the model produces, at
        // every batch size (linearity in batch is exact).
        for batch in [1usize, 16, 32, 64] {
            let m = zoo::lenet();
            let s = WorkloadSpec::from_model(&m);
            assert_eq!(lower(&s, batch).unwrap(), lower_model(&m, batch).unwrap());
        }
    }

    #[test]
    fn flop_scaling_overflow_is_typed_at_the_boundary() {
        // fp_flops = u64::MAX lowers fine at batch 1 and overflows at
        // batch 2 — the boundary is exact, not merely "large fails".
        let text = format!(
            "workload v1\nname Big\ninput 4\nlayer a fc 0 {} 2 4 4 8 0\nend\n",
            u64::MAX
        );
        let s = spec(&text);
        assert!(lower(&s, 1).is_ok());
        assert_eq!(
            lower(&s, 2),
            Err(LowerError::ArithmeticOverflow {
                workload: "Big".into(),
                layer: "a".into()
            })
        );
    }

    #[test]
    fn byte_scaling_overflow_is_typed() {
        // in + out = u64::MAX exactly: the FP sum fits, but the BP
        // kernel's 2x factor overflows even at batch 1. Pre-fix this
        // panicked in debug and wrapped silently in release.
        let half = u64::MAX / 2;
        let text = format!(
            "workload v1\nname Big\ninput 4\nlayer a fc 0 1 2 {} {} 8 0\nend\n",
            half + 1,
            half
        );
        let s = spec(&text);
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::ArithmeticOverflow {
                workload: "Big".into(),
                layer: "a".into()
            })
        );
    }

    #[test]
    fn param_sum_overflow_is_typed() {
        let half = u64::MAX / 2;
        let text = format!(
            "workload v1\nname Big\ninput 4\n\
             layer a fc 0 1 2 4 4 {} 0\nlayer b fc 0 1 2 4 4 {} 0\nend\n",
            half + 1,
            half + 1
        );
        let s = spec(&text);
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::ArithmeticOverflow {
                workload: "Big".into(),
                layer: "b".into()
            })
        );
    }

    const BRANCHY: &str = "workload v2\n\
                           name Branchy\n\
                           input 4\n\
                           layer stem conv 0 10 20 4 8 12 0\n\
                           layer left conv 0 10 20 8 8 12 0\n\
                           dep left stem\n\
                           layer right conv 0 10 20 8 16 12 0\n\
                           dep right stem\n\
                           layer join concat 0 1 2 24 24 0 0\n\
                           dep join left right\n\
                           layer fc fc 0 10 20 24 4 100 0\n\
                           end\n";

    #[test]
    fn explicit_deps_lower_to_a_dag() {
        let s = spec(BRANCHY);
        let lw = lower(&s, 2).unwrap();
        let dag = lw.dag.as_ref().expect("explicit deps lower to a DAG");
        assert_eq!(
            dag.preds,
            vec![vec![], vec![0], vec![0], vec![1, 2], vec![3]]
        );
        assert_eq!(
            dag.succs,
            vec![vec![1, 2], vec![3], vec![3], vec![4], vec![]]
        );
        // Per-edge fan-in bytes: each edge carries its own
        // predecessor's out_bytes scaled by batch, not the flattened
        // in_bytes sum.
        assert_eq!(
            dag.edge_bytes,
            vec![
                vec![],
                vec![2 * 8],
                vec![2 * 8],
                vec![2 * 8, 2 * 16],
                vec![2 * 24]
            ]
        );
        // Kernels themselves are unchanged by the DAG: FP in layer
        // order then BP reversed, same counts as the linear view.
        assert_eq!(lw.kernels.len(), 10);
        assert_eq!(lw.kernels[0].name, "fp.stem");
        assert_eq!(lw.kernels[5].name, "bp.fc");
    }

    #[test]
    fn edge_free_specs_lower_without_a_dag() {
        let s = spec("workload v2\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nend\n");
        assert_eq!(lower(&s, 1).unwrap().dag, None);
        let m = zoo::lenet();
        assert_eq!(lower_model(&m, 1).unwrap().dag, None);
    }

    #[test]
    fn edge_free_v2_lowers_identically_to_v1() {
        let v1 = "workload v1\nname T\ninput 4\n\
                  layer a fc 0 1 2 4 4 8 0\nlayer b fc 0 1 2 4 4 8 0\nend\n";
        let v2 = v1.replacen("workload v1", "workload v2", 1);
        assert_eq!(
            lower(&spec(v1), 16).unwrap(),
            lower(&spec(&v2), 16).unwrap()
        );
    }

    #[test]
    fn dag_spec_overflow_is_typed_at_the_boundary() {
        // A DAG-shaped spec hits the same checked-arithmetic wall as a
        // linear one; the huge fan-in source is named in the error.
        let text = format!(
            "workload v2\nname Big\ninput 4\n\
             layer a fc 0 1 0 2 {} 8 0\nlayer b fc 0 1 2 4 4 8 0\ndep b a\nend\n",
            u64::MAX - 3
        );
        let s = spec(&text);
        assert_eq!(
            lower(&s, 2),
            Err(LowerError::ArithmeticOverflow {
                workload: "Big".into(),
                layer: "a".into()
            })
        );
    }

    #[test]
    fn hand_built_dep_breakage_is_typed() {
        let mut s = spec("workload v2\nname T\ninput 4\nlayer a fc 0 1 2 4 4 8 0\nend\n");
        s.layers[0].deps = Some(vec!["ghost".to_string()]);
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::UnknownDependency {
                layer: "a".into(),
                dep: "ghost".into()
            })
        );
        s.layers[0].deps = Some(vec!["a".to_string()]);
        assert_eq!(
            lower(&s, 1),
            Err(LowerError::CyclicDependencies("a".into()))
        );
    }
}
